//! [`LocalDb`] — the storage façade each site's accelerator talks to.
//!
//! Semantics:
//!
//! * **Steal policy**: `apply` writes the table immediately (before
//!   commit) and logs redo/undo information; abort rolls back by opposite
//!   deltas, crash recovery replays the WAL and undoes in-flight
//!   transactions. This mirrors the paper's rollback-by-opposite-update
//!   rule and makes recovery a real code path rather than a stub.
//! * **Durability model**: the WAL and the catalog survive a fail-stop
//!   crash; the table, lock table and transaction table are volatile.
//!   [`LocalDb::crash`] wipes the volatile parts; [`LocalDb::recover`]
//!   rebuilds the table from the last checkpoint + log replay.

use avdb_types::{
    AvdbError, CatalogEntry, ProductClass, ProductId, Result, TxnId, Volume,
};
use serde::{Deserialize, Serialize};

use crate::locks::{LockManager, LockMode};
use crate::table::{ProductTable, TableSnapshot};
use crate::txn::{TxnManager, TxnState};
use crate::wal::{LogRecord, Wal};
use std::collections::HashMap;

/// What a crash recovery did (surfaced to metrics and tests).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Log records replayed.
    pub replayed_records: usize,
    /// Transactions whose commits were reapplied.
    pub committed_txns: usize,
    /// In-flight transactions rolled back by opposite deltas.
    pub undone_txns: usize,
    /// Whether replay started from a checkpoint snapshot.
    pub from_checkpoint: bool,
}

/// One site's local database.
///
/// ```
/// use avdb_storage::LocalDb;
/// use avdb_types::{CatalogEntry, ProductClass, ProductId, SiteId, TxnId, Volume};
///
/// let catalog = vec![CatalogEntry::new(ProductId(0), ProductClass::Regular, Volume(100))];
/// let mut db = LocalDb::new(&catalog);
///
/// let txn = TxnId::new(SiteId(0), 0);
/// db.begin(txn)?;
/// db.apply(txn, ProductId(0), Volume(-30))?;
/// db.commit(txn)?;
///
/// // A crash loses volatile state; WAL replay restores it.
/// db.crash();
/// db.recover()?;
/// assert_eq!(db.stock(ProductId(0))?, Volume(70));
/// # Ok::<(), avdb_types::AvdbError>(())
/// ```
#[derive(Debug)]
pub struct LocalDb {
    catalog: Vec<CatalogEntry>,
    table: ProductTable,
    wal: Wal,
    locks: LockManager,
    txns: TxnManager,
}

impl LocalDb {
    /// Creates a database initialized from the distributed catalog.
    pub fn new(catalog: &[CatalogEntry]) -> Self {
        LocalDb {
            catalog: catalog.to_vec(),
            table: ProductTable::from_catalog(catalog),
            wal: Wal::new(),
            locks: LockManager::new(),
            txns: TxnManager::new(),
        }
    }

    // ---- reads -----------------------------------------------------------

    /// Current stock of a product.
    pub fn stock(&self, product: ProductId) -> Result<Volume> {
        self.table.stock(product)
    }

    /// Product classification (drives Delay vs Immediate).
    pub fn class(&self, product: ProductId) -> Result<ProductClass> {
        self.table.get(product).map(|r| r.class)
    }

    /// Number of products.
    pub fn n_products(&self) -> usize {
        self.table.len()
    }

    /// Full stock snapshot (replica-convergence checks, checkpoints).
    pub fn snapshot(&self) -> TableSnapshot {
        self.table.snapshot()
    }

    /// Products below a stock threshold (replenishment monitoring).
    pub fn low_stock(&self, threshold: Volume) -> Vec<(ProductId, Volume)> {
        self.table.low_stock(threshold)
    }

    /// The write-ahead log (inspection/tests).
    pub fn wal(&self) -> &Wal {
        &self.wal
    }

    /// The retained catalog (persistence).
    pub fn catalog(&self) -> &[CatalogEntry] {
        &self.catalog
    }

    /// Replaces the WAL wholesale (persistence open path; callers must
    /// run [`LocalDb::recover`] immediately afterwards).
    pub fn install_wal(&mut self, wal: Wal) {
        self.wal = wal;
    }

    /// Transaction statistics.
    pub fn txn_stats(&self) -> (u64, u64, usize) {
        (
            self.txns.committed_count(),
            self.txns.aborted_count(),
            self.txns.in_flight(),
        )
    }

    // ---- transactional writes --------------------------------------------

    /// Begins a transaction.
    pub fn begin(&mut self, txn: TxnId) -> Result<()> {
        self.txns.begin(txn)?;
        self.wal.append(LogRecord::Begin { txn });
        Ok(())
    }

    /// Applies `delta` to `product` within `txn` (write-ahead logged,
    /// table updated immediately, rejected if stock would go negative).
    pub fn apply(&mut self, txn: TxnId, product: ProductId, delta: Volume) -> Result<Volume> {
        if self.txns.state(txn).is_none() {
            return Err(AvdbError::UnknownTxn(txn));
        }
        // Log before table write (write-ahead rule).
        self.wal.append(LogRecord::Apply { txn, product, delta });
        let new = match self.table.apply_delta(product, delta) {
            Ok(v) => v,
            Err(e) => {
                // The logged apply never took effect; compensate in the log
                // so replay stays faithful.
                self.wal.append(LogRecord::Apply { txn, product, delta: -delta });
                return Err(e);
            }
        };
        self.txns.record_apply(txn, product, delta)?;
        Ok(new)
    }

    /// Applies `delta` within `txn` without the non-negative stock guard.
    ///
    /// Used by AV-covered Delay commits: the Allowable Volume bounds the
    /// *global* committed stock, but this replica may lag behind peers'
    /// increments (AV migrates through its own messages, faster than the
    /// lazily propagated data), so the local value may transiently dip
    /// below zero while the global value never does.
    pub fn apply_unchecked(&mut self, txn: TxnId, product: ProductId, delta: Volume) -> Result<Volume> {
        if self.txns.state(txn).is_none() {
            return Err(AvdbError::UnknownTxn(txn));
        }
        self.wal.append(LogRecord::Apply { txn, product, delta });
        let new = self.table.apply_delta_unchecked(product, delta)?;
        self.txns.record_apply(txn, product, delta)?;
        Ok(new)
    }

    /// Marks `txn` prepared (Immediate Update participant vote).
    pub fn prepare(&mut self, txn: TxnId) -> Result<()> {
        self.txns.prepare(txn)
    }

    /// State of an in-flight transaction.
    pub fn txn_state(&self, txn: TxnId) -> Option<TxnState> {
        self.txns.state(txn)
    }

    /// Commits `txn`, releasing its locks; returns the deltas it applied
    /// (for propagation to peers).
    pub fn commit(&mut self, txn: TxnId) -> Result<Vec<(ProductId, Volume)>> {
        let applied = self.txns.commit(txn)?;
        self.wal.append(LogRecord::Commit { txn });
        self.locks.release_all(txn);
        Ok(applied)
    }

    /// Rolls `txn` back by applying opposite deltas, releasing its locks.
    pub fn rollback(&mut self, txn: TxnId) -> Result<()> {
        let undo = self.txns.abort(txn)?;
        for (product, delta) in undo {
            // Unchecked: unwinding may transiently pass through states the
            // forward path would reject.
            self.table.apply_delta_unchecked(product, delta)?;
        }
        self.wal.append(LogRecord::Abort { txn });
        self.locks.release_all(txn);
        Ok(())
    }

    /// Applies an already-committed remote delta (lazy propagation from a
    /// peer). Logged as a complete mini-transaction under the *origin's*
    /// transaction id so the audit trail lines up across sites.
    ///
    /// Unchecked against negative stock: replica application order can
    /// differ from origin order across products, and per-origin FIFO is
    /// all the paper's Delay Update promises.
    pub fn apply_committed(&mut self, txn: TxnId, product: ProductId, delta: Volume) -> Result<Volume> {
        self.wal.append(LogRecord::Begin { txn });
        self.wal.append(LogRecord::Apply { txn, product, delta });
        self.wal.append(LogRecord::Commit { txn });
        self.table.apply_delta_unchecked(product, delta)
    }

    // ---- locks (Immediate Update path) -------------------------------------

    /// Acquires a record lock (no-wait; conflict = error).
    pub fn lock(&mut self, txn: TxnId, product: ProductId, mode: LockMode) -> Result<()> {
        self.locks.acquire(txn, product, mode)
    }

    /// `true` if `product` is locked by anyone.
    pub fn is_locked(&self, product: ProductId) -> bool {
        self.locks.is_locked(product)
    }

    // ---- adaptation ---------------------------------------------------------

    /// Reclassifies a product (regular ↔ non-regular) — runtime adaptation.
    /// Also updates the retained catalog so recovery preserves the new class.
    pub fn reclassify(&mut self, product: ProductId, class: ProductClass) -> Result<()> {
        self.table.reclassify(product, class)?;
        if let Some(e) = self.catalog.get_mut(product.index()) {
            e.class = class;
        }
        Ok(())
    }

    // ---- durability ---------------------------------------------------------

    /// Writes a checkpoint record and truncates the log before it.
    pub fn checkpoint(&mut self) {
        self.wal.append(LogRecord::Checkpoint { snapshot: self.table.snapshot() });
        self.wal.truncate_to_last_checkpoint();
    }

    /// Simulates a fail-stop crash: volatile state (table contents, locks,
    /// transaction table) is lost; WAL and catalog survive.
    pub fn crash(&mut self) {
        self.table = ProductTable::from_catalog(&self.catalog);
        self.locks.clear();
        self.txns.clear();
    }

    /// Rebuilds the table from checkpoint + WAL replay, rolling back any
    /// transaction without a commit record.
    pub fn recover(&mut self) -> Result<RecoveryReport> {
        let mut report = RecoveryReport::default();
        self.table = ProductTable::from_catalog(&self.catalog);
        self.locks.clear();
        self.txns.clear();

        let (snap, suffix) = self.wal.replay_suffix();
        if let Some(snap) = snap {
            self.table.restore(snap)?;
            report.from_checkpoint = true;
        }
        // Redo every apply; remember per-txn deltas so losers can be undone.
        let mut in_flight: HashMap<TxnId, Vec<(ProductId, Volume)>> = HashMap::new();
        let mut committed = 0usize;
        for rec in suffix {
            report.replayed_records += 1;
            match rec {
                LogRecord::Begin { txn } => {
                    in_flight.entry(*txn).or_default();
                }
                LogRecord::Apply { txn, product, delta } => {
                    self.table.apply_delta_unchecked(*product, *delta)?;
                    in_flight.entry(*txn).or_default().push((*product, *delta));
                }
                LogRecord::Commit { txn } => {
                    in_flight.remove(txn);
                    committed += 1;
                }
                LogRecord::Abort { txn } => {
                    if let Some(applied) = in_flight.remove(txn) {
                        for (product, delta) in applied.into_iter().rev() {
                            self.table.apply_delta_unchecked(product, -delta)?;
                        }
                    }
                }
                LogRecord::Checkpoint { .. } => {
                    return Err(AvdbError::Corruption(
                        "checkpoint inside replay suffix".into(),
                    ))
                }
            }
        }
        report.committed_txns = committed;
        // Undo losers (in-flight at crash time) and log their aborts.
        let mut losers: Vec<_> = in_flight.into_iter().collect();
        losers.sort_by_key(|(txn, _)| *txn); // deterministic undo order
        report.undone_txns = losers.len();
        for (txn, applied) in losers {
            for (product, delta) in applied.into_iter().rev() {
                self.table.apply_delta_unchecked(product, -delta)?;
            }
            self.wal.append(LogRecord::Abort { txn });
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avdb_types::SiteId;

    fn catalog() -> Vec<CatalogEntry> {
        vec![
            CatalogEntry::new(ProductId(0), ProductClass::Regular, Volume(100)),
            CatalogEntry::new(ProductId(1), ProductClass::Regular, Volume(50)),
            CatalogEntry::new(ProductId(2), ProductClass::NonRegular, Volume(10)),
        ]
    }

    fn db() -> LocalDb {
        LocalDb::new(&catalog())
    }

    fn t(n: u64) -> TxnId {
        TxnId::new(SiteId(1), n)
    }

    #[test]
    fn begin_apply_commit_updates_stock() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        assert_eq!(db.apply(t(1), ProductId(0), Volume(-30)).unwrap(), Volume(70));
        let deltas = db.commit(t(1)).unwrap();
        assert_eq!(deltas, vec![(ProductId(0), Volume(-30))]);
        assert_eq!(db.stock(ProductId(0)).unwrap(), Volume(70));
        assert_eq!(db.txn_stats(), (1, 0, 0));
    }

    #[test]
    fn rollback_restores_stock() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        db.apply(t(1), ProductId(0), Volume(-30)).unwrap();
        db.apply(t(1), ProductId(1), Volume(5)).unwrap();
        db.rollback(t(1)).unwrap();
        assert_eq!(db.stock(ProductId(0)).unwrap(), Volume(100));
        assert_eq!(db.stock(ProductId(1)).unwrap(), Volume(50));
        assert_eq!(db.txn_stats(), (0, 1, 0));
    }

    #[test]
    fn apply_rejects_negative_stock_and_compensates_log() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        let err = db.apply(t(1), ProductId(2), Volume(-11)).unwrap_err();
        assert!(matches!(err, AvdbError::NegativeStock { .. }));
        assert_eq!(db.stock(ProductId(2)).unwrap(), Volume(10));
        // The txn can still proceed and commit cleanly.
        db.apply(t(1), ProductId(2), Volume(-10)).unwrap();
        db.commit(t(1)).unwrap();
        assert_eq!(db.stock(ProductId(2)).unwrap(), Volume(0));
        // And a crash+recover of that log reproduces the same state.
        db.crash();
        db.recover().unwrap();
        assert_eq!(db.stock(ProductId(2)).unwrap(), Volume(0));
    }

    #[test]
    fn apply_unchecked_allows_transient_negative_and_replays() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        assert_eq!(
            db.apply_unchecked(t(1), ProductId(2), Volume(-15)).unwrap(),
            Volume(-5)
        );
        db.commit(t(1)).unwrap();
        assert_eq!(db.stock(ProductId(2)).unwrap(), Volume(-5));
        db.crash();
        db.recover().unwrap();
        assert_eq!(db.stock(ProductId(2)).unwrap(), Volume(-5));
        // Rollback path also works through the unchecked variant.
        db.begin(t(2)).unwrap();
        db.apply_unchecked(t(2), ProductId(2), Volume(-100)).unwrap();
        db.rollback(t(2)).unwrap();
        assert_eq!(db.stock(ProductId(2)).unwrap(), Volume(-5));
        assert!(matches!(
            db.apply_unchecked(t(9), ProductId(2), Volume(1)),
            Err(AvdbError::UnknownTxn(_))
        ));
    }

    #[test]
    fn apply_requires_begin() {
        let mut db = db();
        assert!(matches!(
            db.apply(t(9), ProductId(0), Volume(-1)),
            Err(AvdbError::UnknownTxn(_))
        ));
    }

    #[test]
    fn apply_committed_logs_mini_txn() {
        let mut db = db();
        let remote = TxnId::new(SiteId(2), 77);
        db.apply_committed(remote, ProductId(0), Volume(-20)).unwrap();
        assert_eq!(db.stock(ProductId(0)).unwrap(), Volume(80));
        assert_eq!(db.wal().len(), 3);
        assert_eq!(db.wal().records()[2], LogRecord::Commit { txn: remote });
    }

    #[test]
    fn crash_loses_uncommitted_recovery_undoes_them() {
        let mut db = db();
        // Committed txn.
        db.begin(t(1)).unwrap();
        db.apply(t(1), ProductId(0), Volume(-30)).unwrap();
        db.commit(t(1)).unwrap();
        // In-flight txn at crash time.
        db.begin(t(2)).unwrap();
        db.apply(t(2), ProductId(1), Volume(-10)).unwrap();
        db.crash();
        // Volatile table reset to catalog values until recovery runs.
        assert_eq!(db.stock(ProductId(0)).unwrap(), Volume(100));
        let report = db.recover().unwrap();
        assert_eq!(db.stock(ProductId(0)).unwrap(), Volume(70), "committed redo");
        assert_eq!(db.stock(ProductId(1)).unwrap(), Volume(50), "in-flight undone");
        assert_eq!(report.committed_txns, 1);
        assert_eq!(report.undone_txns, 1);
        assert!(!report.from_checkpoint);
        assert!(report.replayed_records >= 4);
    }

    #[test]
    fn recovery_from_checkpoint_replays_only_suffix() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        db.apply(t(1), ProductId(0), Volume(-30)).unwrap();
        db.commit(t(1)).unwrap();
        db.checkpoint();
        db.begin(t(2)).unwrap();
        db.apply(t(2), ProductId(0), Volume(-5)).unwrap();
        db.commit(t(2)).unwrap();
        db.crash();
        let report = db.recover().unwrap();
        assert!(report.from_checkpoint);
        assert_eq!(report.committed_txns, 1, "only the post-checkpoint txn replays");
        assert_eq!(db.stock(ProductId(0)).unwrap(), Volume(65));
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        db.apply(t(1), ProductId(0), Volume(-10)).unwrap();
        db.commit(t(1)).unwrap();
        db.crash();
        db.recover().unwrap();
        let snap1 = db.snapshot();
        db.crash();
        db.recover().unwrap();
        assert_eq!(db.snapshot(), snap1);
    }

    #[test]
    fn locks_block_conflicting_writers_and_die_with_crash() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        db.lock(t(1), ProductId(2), LockMode::Exclusive).unwrap();
        assert!(db.is_locked(ProductId(2)));
        let err = db.lock(t(2), ProductId(2), LockMode::Exclusive).unwrap_err();
        assert!(matches!(err, AvdbError::LockConflict { .. }));
        db.crash();
        assert!(!db.is_locked(ProductId(2)));
    }

    #[test]
    fn commit_releases_locks() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        db.lock(t(1), ProductId(2), LockMode::Exclusive).unwrap();
        db.apply(t(1), ProductId(2), Volume(-1)).unwrap();
        db.commit(t(1)).unwrap();
        assert!(!db.is_locked(ProductId(2)));
    }

    #[test]
    fn rollback_releases_locks() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        db.lock(t(1), ProductId(0), LockMode::Exclusive).unwrap();
        db.rollback(t(1)).unwrap();
        assert!(!db.is_locked(ProductId(0)));
    }

    #[test]
    fn reclassification_survives_recovery() {
        let mut db = db();
        db.reclassify(ProductId(0), ProductClass::NonRegular).unwrap();
        db.crash();
        db.recover().unwrap();
        assert_eq!(db.class(ProductId(0)).unwrap(), ProductClass::NonRegular);
    }

    #[test]
    fn prepared_state_visible() {
        let mut db = db();
        db.begin(t(1)).unwrap();
        db.prepare(t(1)).unwrap();
        assert_eq!(db.txn_state(t(1)), Some(TxnState::Prepared));
        assert_eq!(db.txn_state(t(2)), None);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use avdb_types::SiteId;
    use proptest::prelude::*;

    /// Random mixes of committed and rolled-back transactions must leave
    /// the table identical to a naive model that only applies committed
    /// deltas — and crash+recover must reproduce exactly the same state.
    #[derive(Clone, Debug)]
    enum Op {
        Txn { product: u8, delta: i32, commit: bool },
        Checkpoint,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            9 => (0u8..4, -40i32..40, any::<bool>())
                .prop_map(|(product, delta, commit)| Op::Txn { product, delta, commit }),
            1 => Just(Op::Checkpoint),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_recovery_matches_live_state(ops in prop::collection::vec(op_strategy(), 1..60)) {
            let catalog: Vec<CatalogEntry> = (0..4)
                .map(|i| CatalogEntry::new(ProductId(i), ProductClass::Regular, Volume(1000)))
                .collect();
            let mut db = LocalDb::new(&catalog);
            let mut model = vec![Volume(1000); 4];
            for (i, op) in ops.iter().enumerate() {
                match op {
                    Op::Txn { product, delta, commit } => {
                        let txn = TxnId::new(SiteId(0), i as u64);
                        let p = ProductId(*product as u32);
                        let d = Volume(*delta as i64);
                        db.begin(txn).unwrap();
                        let applied = db.apply(txn, p, d).is_ok();
                        if *commit {
                            db.commit(txn).unwrap();
                            if applied {
                                model[p.index()] += d;
                            }
                        } else {
                            db.rollback(txn).unwrap();
                        }
                    }
                    Op::Checkpoint => db.checkpoint(),
                }
            }
            let live: Vec<Volume> = (0..4).map(|i| db.stock(ProductId(i)).unwrap()).collect();
            prop_assert_eq!(&live, &model, "live state matches committed-only model");
            db.crash();
            db.recover().unwrap();
            let recovered: Vec<Volume> = (0..4).map(|i| db.stock(ProductId(i)).unwrap()).collect();
            prop_assert_eq!(&recovered, &model, "recovered state matches model");
        }
    }
}
