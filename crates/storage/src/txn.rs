//! Transaction bookkeeping.
//!
//! Tracks which transactions are active and the deltas they have applied,
//! so that rollback can apply the *opposite* of each delta — the exact
//! recovery rule the paper uses to justify non-exclusive AV holds: "if
//! rollback of transaction occurs, the recovery of operation can be done
//! by updating with opposite of update volume" (§3.3).

use avdb_types::{AvdbError, ProductId, Result, TxnId, Volume};
use std::collections::HashMap;

/// Lifecycle state of one transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxnState {
    /// Begun, may still apply deltas.
    Active,
    /// Prepared (Immediate Update participant voted ready); may only
    /// commit or abort.
    Prepared,
}

#[derive(Clone, Debug)]
struct TxnRecord {
    state: TxnState,
    /// Applied `(product, delta)` pairs in order.
    applied: Vec<(ProductId, Volume)>,
}

/// In-memory transaction table for one site.
#[derive(Debug, Default)]
pub struct TxnManager {
    active: HashMap<TxnId, TxnRecord>,
    committed: u64,
    aborted: u64,
}

impl TxnManager {
    /// Empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begins a transaction; fails if the id is already in flight.
    pub fn begin(&mut self, txn: TxnId) -> Result<()> {
        if self.active.contains_key(&txn) {
            return Err(AvdbError::InvalidTransition {
                detail: format!("{txn} already active"),
            });
        }
        self.active.insert(txn, TxnRecord { state: TxnState::Active, applied: Vec::new() });
        Ok(())
    }

    /// Records a delta applied on behalf of `txn`.
    pub fn record_apply(&mut self, txn: TxnId, product: ProductId, delta: Volume) -> Result<()> {
        let rec = self.active.get_mut(&txn).ok_or(AvdbError::UnknownTxn(txn))?;
        if rec.state != TxnState::Active {
            return Err(AvdbError::InvalidTransition {
                detail: format!("{txn} is prepared; no further writes allowed"),
            });
        }
        rec.applied.push((product, delta));
        Ok(())
    }

    /// Marks `txn` prepared (participant side of Immediate Update).
    pub fn prepare(&mut self, txn: TxnId) -> Result<()> {
        let rec = self.active.get_mut(&txn).ok_or(AvdbError::UnknownTxn(txn))?;
        rec.state = TxnState::Prepared;
        Ok(())
    }

    /// Finishes `txn` as committed, returning its applied deltas (the
    /// caller propagates them and appends the WAL commit record).
    pub fn commit(&mut self, txn: TxnId) -> Result<Vec<(ProductId, Volume)>> {
        let rec = self.active.remove(&txn).ok_or(AvdbError::UnknownTxn(txn))?;
        self.committed += 1;
        Ok(rec.applied)
    }

    /// Finishes `txn` as aborted, returning the *undo list*: opposite
    /// deltas in reverse application order.
    pub fn abort(&mut self, txn: TxnId) -> Result<Vec<(ProductId, Volume)>> {
        let rec = self.active.remove(&txn).ok_or(AvdbError::UnknownTxn(txn))?;
        self.aborted += 1;
        Ok(rec.applied.into_iter().rev().map(|(p, d)| (p, -d)).collect())
    }

    /// Current state of a transaction, if in flight.
    pub fn state(&self, txn: TxnId) -> Option<TxnState> {
        self.active.get(&txn).map(|r| r.state)
    }

    /// Number of in-flight transactions.
    pub fn in_flight(&self) -> usize {
        self.active.len()
    }

    /// Ids of all in-flight transactions (crash recovery enumerates these
    /// to abort them).
    pub fn in_flight_ids(&self) -> Vec<TxnId> {
        self.active.keys().copied().collect()
    }

    /// Lifetime commit count.
    pub fn committed_count(&self) -> u64 {
        self.committed
    }

    /// Lifetime abort count.
    pub fn aborted_count(&self) -> u64 {
        self.aborted
    }

    /// Drops all volatile state (fail-stop crash). Counters survive only
    /// because they are a test/metrics convenience, not protocol state.
    pub fn clear(&mut self) {
        self.active.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avdb_types::SiteId;

    fn t(n: u64) -> TxnId {
        TxnId::new(SiteId(2), n)
    }

    #[test]
    fn begin_apply_commit_flow() {
        let mut tm = TxnManager::new();
        tm.begin(t(1)).unwrap();
        assert_eq!(tm.state(t(1)), Some(TxnState::Active));
        tm.record_apply(t(1), ProductId(0), Volume(-5)).unwrap();
        tm.record_apply(t(1), ProductId(1), Volume(3)).unwrap();
        let applied = tm.commit(t(1)).unwrap();
        assert_eq!(applied, vec![(ProductId(0), Volume(-5)), (ProductId(1), Volume(3))]);
        assert_eq!(tm.committed_count(), 1);
        assert_eq!(tm.in_flight(), 0);
        assert_eq!(tm.state(t(1)), None);
    }

    #[test]
    fn abort_returns_reversed_opposite_deltas() {
        let mut tm = TxnManager::new();
        tm.begin(t(1)).unwrap();
        tm.record_apply(t(1), ProductId(0), Volume(-5)).unwrap();
        tm.record_apply(t(1), ProductId(1), Volume(3)).unwrap();
        let undo = tm.abort(t(1)).unwrap();
        assert_eq!(undo, vec![(ProductId(1), Volume(-3)), (ProductId(0), Volume(5))]);
        assert_eq!(tm.aborted_count(), 1);
    }

    #[test]
    fn double_begin_rejected() {
        let mut tm = TxnManager::new();
        tm.begin(t(1)).unwrap();
        assert!(matches!(tm.begin(t(1)), Err(AvdbError::InvalidTransition { .. })));
    }

    #[test]
    fn operations_on_unknown_txn_fail() {
        let mut tm = TxnManager::new();
        assert!(matches!(
            tm.record_apply(t(9), ProductId(0), Volume(1)),
            Err(AvdbError::UnknownTxn(_))
        ));
        assert!(matches!(tm.commit(t(9)), Err(AvdbError::UnknownTxn(_))));
        assert!(matches!(tm.abort(t(9)), Err(AvdbError::UnknownTxn(_))));
        assert!(matches!(tm.prepare(t(9)), Err(AvdbError::UnknownTxn(_))));
    }

    #[test]
    fn prepared_blocks_further_writes() {
        let mut tm = TxnManager::new();
        tm.begin(t(1)).unwrap();
        tm.record_apply(t(1), ProductId(0), Volume(1)).unwrap();
        tm.prepare(t(1)).unwrap();
        assert_eq!(tm.state(t(1)), Some(TxnState::Prepared));
        assert!(matches!(
            tm.record_apply(t(1), ProductId(0), Volume(1)),
            Err(AvdbError::InvalidTransition { .. })
        ));
        // Prepared txns can still commit.
        assert_eq!(tm.commit(t(1)).unwrap().len(), 1);
    }

    #[test]
    fn clear_drops_in_flight() {
        let mut tm = TxnManager::new();
        tm.begin(t(1)).unwrap();
        tm.begin(t(2)).unwrap();
        assert_eq!(tm.in_flight(), 2);
        let mut ids = tm.in_flight_ids();
        ids.sort();
        assert_eq!(ids, vec![t(1), t(2)]);
        tm.clear();
        assert_eq!(tm.in_flight(), 0);
    }
}
