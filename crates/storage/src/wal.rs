//! Write-ahead log.
//!
//! Append-only sequence of [`LogRecord`]s. In this reproduction the "disk"
//! is process memory — the simulator models fail-stop crashes as loss of
//! *volatile* protocol state, with the WAL surviving — but the format is
//! JSON-lines serializable so runs can be dumped and inspected, and replay
//! is the real thing: [`crate::LocalDb::recover`] rebuilds the table
//! strictly from checkpoint + log.

use avdb_types::{AvdbError, ProductId, Result, TxnId, Volume};
use serde::{Deserialize, Serialize};

use crate::table::TableSnapshot;

/// One durable log entry.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LogRecord {
    /// Transaction began.
    Begin {
        /// Transaction id.
        txn: TxnId,
    },
    /// Transaction applied `delta` to `product` (redo information; undo is
    /// the opposite delta, per the paper's rollback rule).
    Apply {
        /// Transaction id.
        txn: TxnId,
        /// Product updated.
        product: ProductId,
        /// Signed stock change.
        delta: Volume,
    },
    /// Transaction committed.
    Commit {
        /// Transaction id.
        txn: TxnId,
    },
    /// Transaction aborted (its applies must be undone on replay).
    Abort {
        /// Transaction id.
        txn: TxnId,
    },
    /// Checkpoint: full stock snapshot; replay starts at the last one.
    Checkpoint {
        /// Stock levels at checkpoint time.
        snapshot: TableSnapshot,
    },
}

impl LogRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Apply { txn, .. }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn } => Some(*txn),
            LogRecord::Checkpoint { .. } => None,
        }
    }
}

/// Append-only write-ahead log.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Wal {
    records: Vec<LogRecord>,
}

impl Wal {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record.
    pub fn append(&mut self, rec: LogRecord) {
        self.records.push(rec);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in append order.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Records at or after the last checkpoint (what replay actually
    /// reads), together with that checkpoint's snapshot if one exists.
    pub fn replay_suffix(&self) -> (Option<&TableSnapshot>, &[LogRecord]) {
        let mut start = 0;
        let mut snap = None;
        for (i, rec) in self.records.iter().enumerate() {
            if let LogRecord::Checkpoint { snapshot } = rec {
                snap = Some(snapshot);
                start = i + 1;
            }
        }
        (snap, &self.records[start..])
    }

    /// Drops all records before the last checkpoint (log truncation).
    pub fn truncate_to_last_checkpoint(&mut self) {
        let mut start = None;
        for (i, rec) in self.records.iter().enumerate() {
            if matches!(rec, LogRecord::Checkpoint { .. }) {
                start = Some(i);
            }
        }
        if let Some(i) = start {
            self.records.drain(..i);
        }
    }

    /// Serializes to JSON lines (one record per line) for inspection.
    pub fn to_json_lines(&self) -> Result<String> {
        let mut out = String::new();
        for rec in &self.records {
            out.push_str(
                &serde_json::to_string(rec).map_err(|e| AvdbError::Codec(e.to_string()))?,
            );
            out.push('\n');
        }
        Ok(out)
    }

    /// Parses a JSON-lines dump back into a log.
    ///
    /// A final line that fails to parse *and* is missing its terminating
    /// newline is treated as a record truncated by a crash mid-write: it
    /// is discarded and recovery proceeds from the last complete record.
    /// An unparsable line anywhere else (or a newline-terminated one) is
    /// real corruption and rejected.
    pub fn from_json_lines(s: &str) -> Result<Self> {
        let mut wal = Wal::new();
        let lines: Vec<(usize, &str)> = s
            .lines()
            .enumerate()
            .filter(|(_, line)| !line.trim().is_empty())
            .collect();
        let unterminated_tail = !s.is_empty() && !s.ends_with('\n');
        for (pos, (i, line)) in lines.iter().enumerate() {
            match serde_json::from_str::<LogRecord>(line) {
                Ok(rec) => wal.append(rec),
                Err(_) if pos + 1 == lines.len() && unterminated_tail => break,
                Err(e) => return Err(AvdbError::Codec(format!("line {}: {e}", i + 1))),
            }
        }
        Ok(wal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avdb_types::SiteId;

    fn txn(n: u64) -> TxnId {
        TxnId::new(SiteId(1), n)
    }

    fn sample() -> Wal {
        let mut w = Wal::new();
        w.append(LogRecord::Begin { txn: txn(1) });
        w.append(LogRecord::Apply { txn: txn(1), product: ProductId(0), delta: Volume(-5) });
        w.append(LogRecord::Commit { txn: txn(1) });
        w
    }

    #[test]
    fn append_preserves_order() {
        let w = sample();
        assert_eq!(w.len(), 3);
        assert!(matches!(w.records()[0], LogRecord::Begin { .. }));
        assert!(matches!(w.records()[2], LogRecord::Commit { .. }));
    }

    #[test]
    fn txn_accessor() {
        assert_eq!(LogRecord::Begin { txn: txn(4) }.txn(), Some(txn(4)));
        assert_eq!(
            LogRecord::Checkpoint { snapshot: TableSnapshot { stocks: vec![] } }.txn(),
            None
        );
    }

    #[test]
    fn replay_suffix_without_checkpoint_is_whole_log() {
        let w = sample();
        let (snap, suffix) = w.replay_suffix();
        assert!(snap.is_none());
        assert_eq!(suffix.len(), 3);
    }

    #[test]
    fn replay_suffix_starts_after_last_checkpoint() {
        let mut w = sample();
        w.append(LogRecord::Checkpoint {
            snapshot: TableSnapshot { stocks: vec![Volume(95)] },
        });
        w.append(LogRecord::Begin { txn: txn(2) });
        let (snap, suffix) = w.replay_suffix();
        assert_eq!(snap.unwrap().stocks, vec![Volume(95)]);
        assert_eq!(suffix.len(), 1);
        assert!(matches!(suffix[0], LogRecord::Begin { .. }));
    }

    #[test]
    fn truncation_keeps_checkpoint_and_suffix() {
        let mut w = sample();
        w.append(LogRecord::Checkpoint {
            snapshot: TableSnapshot { stocks: vec![Volume(95)] },
        });
        w.append(LogRecord::Begin { txn: txn(2) });
        w.truncate_to_last_checkpoint();
        assert_eq!(w.len(), 2);
        assert!(matches!(w.records()[0], LogRecord::Checkpoint { .. }));
        // Truncation with no checkpoint is a no-op.
        let mut plain = sample();
        plain.truncate_to_last_checkpoint();
        assert_eq!(plain.len(), 3);
    }

    #[test]
    fn json_lines_round_trip() {
        let mut w = sample();
        w.append(LogRecord::Abort { txn: txn(2) });
        w.append(LogRecord::Checkpoint {
            snapshot: TableSnapshot { stocks: vec![Volume(1), Volume(2)] },
        });
        let dump = w.to_json_lines().unwrap();
        assert_eq!(dump.lines().count(), 5);
        let back = Wal::from_json_lines(&dump).unwrap();
        assert_eq!(w, back);
    }

    #[test]
    fn json_lines_rejects_garbage() {
        let err = Wal::from_json_lines("not json\n").unwrap_err();
        assert!(matches!(err, AvdbError::Codec(_)));
        // Blank lines are tolerated.
        let ok = Wal::from_json_lines("\n\n").unwrap();
        assert!(ok.is_empty());
    }
}
