//! The replicated product table.
//!
//! "The content of all local DBs are the same, which include product names
//! and amount of their stock" (paper §3.2). Rows are stored densely by
//! product id — the catalog is distributed once from the base DB and never
//! grows mid-run, so a `Vec` beats a map for both speed and memory (see
//! the perf-book guidance on avoiding hashing when keys are dense).

use avdb_types::{AvdbError, CatalogEntry, ProductClass, ProductId, Result, Volume};
use serde::{Deserialize, Serialize};

/// One row of the product table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductRow {
    /// Product key.
    pub id: ProductId,
    /// Display name.
    pub name: String,
    /// Regular / non-regular classification (drives protocol choice).
    pub class: ProductClass,
    /// Current stock level at this replica.
    pub stock: Volume,
}

/// Dense, in-memory product table.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProductTable {
    rows: Vec<ProductRow>,
}

impl ProductTable {
    /// Builds the table from the initially distributed catalog.
    pub fn from_catalog(catalog: &[CatalogEntry]) -> Self {
        ProductTable {
            rows: catalog
                .iter()
                .map(|e| ProductRow {
                    id: e.id,
                    name: e.name.clone(),
                    class: e.class,
                    stock: e.initial_stock,
                })
                .collect(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Read a row.
    pub fn get(&self, id: ProductId) -> Result<&ProductRow> {
        self.rows.get(id.index()).ok_or(AvdbError::UnknownProduct(id))
    }

    /// Current stock of a product.
    pub fn stock(&self, id: ProductId) -> Result<Volume> {
        self.get(id).map(|r| r.stock)
    }

    /// Applies a signed delta to a product's stock, rejecting writes that
    /// would take the level negative.
    pub fn apply_delta(&mut self, id: ProductId, delta: Volume) -> Result<Volume> {
        let row = self
            .rows
            .get_mut(id.index())
            .ok_or(AvdbError::UnknownProduct(id))?;
        let new = row.stock + delta;
        if new.is_negative() {
            return Err(AvdbError::NegativeStock { product: id, would_be: new });
        }
        row.stock = new;
        Ok(new)
    }

    /// Applies a delta unconditionally (used only by WAL *undo*, where the
    /// intermediate state may transiently dip below zero while unwinding).
    pub fn apply_delta_unchecked(&mut self, id: ProductId, delta: Volume) -> Result<Volume> {
        let row = self
            .rows
            .get_mut(id.index())
            .ok_or(AvdbError::UnknownProduct(id))?;
        row.stock += delta;
        Ok(row.stock)
    }

    /// Overwrites a product's stock (snapshot restore).
    pub fn set_stock(&mut self, id: ProductId, value: Volume) -> Result<()> {
        let row = self
            .rows
            .get_mut(id.index())
            .ok_or(AvdbError::UnknownProduct(id))?;
        row.stock = value;
        Ok(())
    }

    /// Reclassifies a product at runtime — the paper's "adaptation to
    /// unpredictable user requirements" hinges on being able to move a
    /// product between the Delay (regular) and Immediate (non-regular)
    /// regimes without rebuilding the system.
    pub fn reclassify(&mut self, id: ProductId, class: ProductClass) -> Result<()> {
        let row = self
            .rows
            .get_mut(id.index())
            .ok_or(AvdbError::UnknownProduct(id))?;
        row.class = class;
        Ok(())
    }

    /// Iterates over all rows.
    pub fn iter(&self) -> impl Iterator<Item = &ProductRow> {
        self.rows.iter()
    }

    /// Immutable full-copy snapshot (checkpointing, replica comparison).
    pub fn snapshot(&self) -> TableSnapshot {
        TableSnapshot { stocks: self.rows.iter().map(|r| r.stock).collect() }
    }

    /// Restores stock levels from a snapshot taken on a table with the
    /// same catalog.
    pub fn restore(&mut self, snap: &TableSnapshot) -> Result<()> {
        if snap.stocks.len() != self.rows.len() {
            return Err(AvdbError::Corruption(format!(
                "snapshot has {} rows, table has {}",
                snap.stocks.len(),
                self.rows.len()
            )));
        }
        for (row, &stock) in self.rows.iter_mut().zip(&snap.stocks) {
            row.stock = stock;
        }
        Ok(())
    }

    /// Total stock across all products (test/invariant hook).
    pub fn total_stock(&self) -> Volume {
        self.rows.iter().map(|r| r.stock).sum()
    }

    /// Products whose stock is strictly below `threshold`, in id order —
    /// the replenishment query the maker's monitoring loop runs.
    pub fn low_stock(&self, threshold: Volume) -> Vec<(ProductId, Volume)> {
        self.rows
            .iter()
            .filter(|r| r.stock < threshold)
            .map(|r| (r.id, r.stock))
            .collect()
    }

    /// The `k` best-stocked products, descending by stock (ties by id).
    pub fn top_stock(&self, k: usize) -> Vec<(ProductId, Volume)> {
        let mut all: Vec<(ProductId, Volume)> =
            self.rows.iter().map(|r| (r.id, r.stock)).collect();
        all.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Rows matching `predicate` (generic scan).
    pub fn scan<F: FnMut(&ProductRow) -> bool>(&self, mut predicate: F) -> Vec<&ProductRow> {
        self.rows.iter().filter(|r| predicate(r)).collect()
    }
}

/// Stock levels at one instant; the catalog part never changes so only
/// levels are captured.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSnapshot {
    /// Stock per product, densely indexed.
    pub stocks: Vec<Volume>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Vec<CatalogEntry> {
        vec![
            CatalogEntry::new(ProductId(0), ProductClass::Regular, Volume(100)),
            CatalogEntry::new(ProductId(1), ProductClass::NonRegular, Volume(10)),
        ]
    }

    fn table() -> ProductTable {
        ProductTable::from_catalog(&catalog())
    }

    #[test]
    fn from_catalog_copies_rows() {
        let t = table();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.stock(ProductId(0)).unwrap(), Volume(100));
        assert_eq!(t.get(ProductId(1)).unwrap().class, ProductClass::NonRegular);
        assert_eq!(t.get(ProductId(1)).unwrap().name, "product-1");
    }

    #[test]
    fn apply_delta_updates_and_guards_negative() {
        let mut t = table();
        assert_eq!(t.apply_delta(ProductId(0), Volume(-30)).unwrap(), Volume(70));
        assert_eq!(t.apply_delta(ProductId(0), Volume(5)).unwrap(), Volume(75));
        let err = t.apply_delta(ProductId(0), Volume(-76)).unwrap_err();
        assert!(matches!(err, AvdbError::NegativeStock { .. }));
        // Failed apply leaves the row untouched.
        assert_eq!(t.stock(ProductId(0)).unwrap(), Volume(75));
    }

    #[test]
    fn unknown_product_errors() {
        let mut t = table();
        assert!(matches!(t.get(ProductId(9)), Err(AvdbError::UnknownProduct(_))));
        assert!(t.apply_delta(ProductId(9), Volume(1)).is_err());
        assert!(t.set_stock(ProductId(9), Volume(1)).is_err());
        assert!(t.reclassify(ProductId(9), ProductClass::Regular).is_err());
    }

    #[test]
    fn unchecked_delta_allows_transient_negative() {
        let mut t = table();
        assert_eq!(
            t.apply_delta_unchecked(ProductId(1), Volume(-15)).unwrap(),
            Volume(-5)
        );
        assert_eq!(t.stock(ProductId(1)).unwrap(), Volume(-5));
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let mut t = table();
        let snap = t.snapshot();
        t.apply_delta(ProductId(0), Volume(-40)).unwrap();
        t.apply_delta(ProductId(1), Volume(3)).unwrap();
        assert_ne!(t.snapshot(), snap);
        t.restore(&snap).unwrap();
        assert_eq!(t.stock(ProductId(0)).unwrap(), Volume(100));
        assert_eq!(t.stock(ProductId(1)).unwrap(), Volume(10));
    }

    #[test]
    fn restore_rejects_mismatched_snapshot() {
        let mut t = table();
        let bad = TableSnapshot { stocks: vec![Volume(1)] };
        assert!(matches!(t.restore(&bad), Err(AvdbError::Corruption(_))));
    }

    #[test]
    fn reclassify_switches_regime() {
        let mut t = table();
        t.reclassify(ProductId(0), ProductClass::NonRegular).unwrap();
        assert_eq!(t.get(ProductId(0)).unwrap().class, ProductClass::NonRegular);
    }

    #[test]
    fn total_stock_sums() {
        let t = table();
        assert_eq!(t.total_stock(), Volume(110));
    }

    #[test]
    fn low_stock_filters_below_threshold() {
        let mut t = table();
        t.apply_delta(ProductId(0), Volume(-95)).unwrap(); // now 5
        assert_eq!(t.low_stock(Volume(10)), vec![(ProductId(0), Volume(5))]);
        assert_eq!(t.low_stock(Volume(5)), vec![]);
        assert_eq!(t.low_stock(Volume(100)).len(), 2);
    }

    #[test]
    fn top_stock_orders_descending() {
        let t = table();
        assert_eq!(
            t.top_stock(2),
            vec![(ProductId(0), Volume(100)), (ProductId(1), Volume(10))]
        );
        assert_eq!(t.top_stock(1).len(), 1);
        assert_eq!(t.top_stock(9).len(), 2, "k beyond len is fine");
    }

    #[test]
    fn scan_applies_predicate() {
        let t = table();
        let regulars = t.scan(|r| r.class == ProductClass::Regular);
        assert_eq!(regulars.len(), 1);
        assert_eq!(regulars[0].id, ProductId(0));
    }
}
