//! Disk persistence for a site's durable state.
//!
//! The simulation models durability in memory; this module makes it real:
//! a [`crate::LocalDb`]'s durable parts — the catalog and the write-ahead
//! log — serialize to a directory as human-inspectable JSON(-lines)
//! files, and a database opened from that directory recovers through the
//! exact same WAL-replay path a crash uses. The volatile parts (table,
//! locks, transaction table) are deliberately *not* stored: recovery
//! rebuilds them, which keeps the on-disk format minimal and the recovery
//! code honest.
//!
//! Layout:
//!
//! ```text
//! <dir>/catalog.json   — Vec<CatalogEntry>
//! <dir>/wal.jsonl      — one LogRecord per line
//! ```

use crate::engine::{LocalDb, RecoveryReport};
use crate::wal::Wal;
use avdb_types::{AvdbError, CatalogEntry, Result};
use std::fs;
use std::path::Path;

/// File name of the serialized catalog.
pub const CATALOG_FILE: &str = "catalog.json";
/// File name of the serialized write-ahead log.
pub const WAL_FILE: &str = "wal.jsonl";

fn io_err(context: &str, e: std::io::Error) -> AvdbError {
    AvdbError::Corruption(format!("{context}: {e}"))
}

impl LocalDb {
    /// Persists the durable state (catalog + WAL) into `dir`, creating it
    /// if needed. Existing files are overwritten atomically enough for
    /// the reproduction's purposes (write to `.tmp`, then rename).
    pub fn persist_to_dir(&self, dir: &Path) -> Result<()> {
        fs::create_dir_all(dir).map_err(|e| io_err("create dir", e))?;
        let catalog_json = serde_json::to_string_pretty(self.catalog())
            .map_err(|e| AvdbError::Codec(e.to_string()))?;
        let wal_lines = self.wal().to_json_lines()?;
        for (name, content) in [(CATALOG_FILE, catalog_json), (WAL_FILE, wal_lines)] {
            let tmp = dir.join(format!("{name}.tmp"));
            let final_path = dir.join(name);
            fs::write(&tmp, content).map_err(|e| io_err("write", e))?;
            fs::rename(&tmp, &final_path).map_err(|e| io_err("rename", e))?;
        }
        Ok(())
    }

    /// Opens a database from a directory written by
    /// [`LocalDb::persist_to_dir`], replaying the WAL to rebuild the
    /// table. Returns the database and what recovery did.
    pub fn open_from_dir(dir: &Path) -> Result<(LocalDb, RecoveryReport)> {
        let catalog_raw = fs::read_to_string(dir.join(CATALOG_FILE))
            .map_err(|e| io_err("read catalog", e))?;
        let catalog: Vec<CatalogEntry> = serde_json::from_str(&catalog_raw)
            .map_err(|e| AvdbError::Codec(format!("catalog: {e}")))?;
        let wal_raw =
            fs::read_to_string(dir.join(WAL_FILE)).map_err(|e| io_err("read wal", e))?;
        let wal = Wal::from_json_lines(&wal_raw)?;
        let mut db = LocalDb::new(&catalog);
        db.install_wal(wal);
        let report = db.recover()?;
        Ok((db, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avdb_types::{ProductClass, ProductId, SiteId, TxnId, Volume};

    fn catalog() -> Vec<CatalogEntry> {
        vec![
            CatalogEntry::new(ProductId(0), ProductClass::Regular, Volume(100)),
            CatalogEntry::new(ProductId(1), ProductClass::NonRegular, Volume(10)),
        ]
    }

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "avdb-persist-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn t(n: u64) -> TxnId {
        TxnId::new(SiteId(0), n)
    }

    #[test]
    fn persist_and_open_round_trips_state() {
        let dir = tempdir("roundtrip");
        let mut db = LocalDb::new(&catalog());
        db.begin(t(1)).unwrap();
        db.apply(t(1), ProductId(0), Volume(-30)).unwrap();
        db.commit(t(1)).unwrap();
        // An in-flight transaction at persist time must be rolled back by
        // the open-time recovery.
        db.begin(t(2)).unwrap();
        db.apply(t(2), ProductId(1), Volume(-4)).unwrap();
        db.persist_to_dir(&dir).unwrap();

        let (reopened, report) = LocalDb::open_from_dir(&dir).unwrap();
        assert_eq!(reopened.stock(ProductId(0)).unwrap(), Volume(70));
        assert_eq!(reopened.stock(ProductId(1)).unwrap(), Volume(10), "loser undone");
        assert_eq!(report.committed_txns, 1);
        assert_eq!(report.undone_txns, 1);
        assert_eq!(reopened.class(ProductId(1)).unwrap(), ProductClass::NonRegular);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persist_after_checkpoint_keeps_only_suffix() {
        let dir = tempdir("checkpoint");
        let mut db = LocalDb::new(&catalog());
        db.begin(t(1)).unwrap();
        db.apply(t(1), ProductId(0), Volume(-10)).unwrap();
        db.commit(t(1)).unwrap();
        db.checkpoint();
        db.begin(t(2)).unwrap();
        db.apply(t(2), ProductId(0), Volume(-5)).unwrap();
        db.commit(t(2)).unwrap();
        db.persist_to_dir(&dir).unwrap();

        let (reopened, report) = LocalDb::open_from_dir(&dir).unwrap();
        assert!(report.from_checkpoint);
        assert_eq!(report.committed_txns, 1, "pre-checkpoint history truncated");
        assert_eq!(reopened.stock(ProductId(0)).unwrap(), Volume(85));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeated_persist_overwrites() {
        let dir = tempdir("overwrite");
        let mut db = LocalDb::new(&catalog());
        db.persist_to_dir(&dir).unwrap();
        db.begin(t(1)).unwrap();
        db.apply(t(1), ProductId(0), Volume(-1)).unwrap();
        db.commit(t(1)).unwrap();
        db.persist_to_dir(&dir).unwrap();
        let (reopened, _) = LocalDb::open_from_dir(&dir).unwrap();
        assert_eq!(reopened.stock(ProductId(0)).unwrap(), Volume(99));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_missing_dir_fails_cleanly() {
        let err = LocalDb::open_from_dir(Path::new("/nonexistent/avdb-xyz")).unwrap_err();
        assert!(matches!(err, AvdbError::Corruption(_)));
    }

    #[test]
    fn open_corrupt_wal_fails_cleanly() {
        let dir = tempdir("corrupt");
        let db = LocalDb::new(&catalog());
        db.persist_to_dir(&dir).unwrap();
        fs::write(dir.join(WAL_FILE), "this is not a log record\n").unwrap();
        let err = LocalDb::open_from_dir(&dir).unwrap_err();
        assert!(matches!(err, AvdbError::Codec(_)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn files_are_human_inspectable() {
        let dir = tempdir("inspect");
        let mut db = LocalDb::new(&catalog());
        db.begin(t(1)).unwrap();
        db.apply(t(1), ProductId(0), Volume(-2)).unwrap();
        db.commit(t(1)).unwrap();
        db.persist_to_dir(&dir).unwrap();
        let wal = fs::read_to_string(dir.join(WAL_FILE)).unwrap();
        assert!(wal.contains("\"Begin\""));
        assert!(wal.contains("\"Commit\""));
        let cat = fs::read_to_string(dir.join(CATALOG_FILE)).unwrap();
        assert!(cat.contains("product-0"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
