#![warn(missing_docs)]

//! # avdb-storage
//!
//! The local database engine that lives at every site (the "local DB" of
//! the paper's Fig. 2). One instance per site, storing the replicated
//! product table plus the durable machinery the protocols need:
//!
//! * [`table`] — the product table (id → name, class, stock level);
//! * [`wal`] — a write-ahead log of transaction records, replayable after
//!   a crash, serializable to JSON lines for inspection;
//! * [`locks`] — a record-level lock manager used by the Immediate Update
//!   primary-copy commit (Delay Updates never take locks — the paper is
//!   explicit that AV holds are not exclusive);
//! * [`txn`] — transaction bookkeeping with rollback by *opposite delta*,
//!   exactly the recovery rule the paper prescribes for Delay Updates;
//! * [`engine`] — [`LocalDb`], the façade tying those together, with
//!   checkpointing and crash/replay recovery.
//!
//! The engine is single-writer by design: each site's accelerator is the
//! only mutator of its local DB, so the engine needs no internal locking;
//! sharing across threads (live transport) wraps it at a higher level.

pub mod engine;
pub mod locks;
pub mod persist;
pub mod table;
pub mod txn;
pub mod wal;

pub use engine::{LocalDb, RecoveryReport};
pub use locks::{LockManager, LockMode};
pub use table::{ProductRow, ProductTable, TableSnapshot};
pub use txn::{TxnManager, TxnState};
pub use wal::{LogRecord, Wal};
