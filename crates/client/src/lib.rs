#![warn(missing_docs)]

//! Wire-protocol client: pipelined connections and a round-robin pool.
//!
//! A [`Connection`] owns one TCP socket to a gateway site listener and
//! may have many requests in flight: [`Connection::submit`] assigns a
//! fresh request id, writes the frame, and hands back a [`PendingReply`]
//! that resolves when the background reader matches a response frame by
//! id — regardless of the order the gateway completes them in. This is
//! the client half of the pipelining contract; the gateway's in-flight
//! window (`max_in_flight`) bounds how deep the pipeline may run.
//!
//! Responses that match no outstanding request (the gateway's
//! `req_id = 0` connection-level errors, or a `Shed` notice racing a
//! reply) are retained and can be collected with
//! [`Connection::take_orphans`].

use avdb_wire::{encode_request, Decoder, ErrorCode, Request, Response};
use bytes::BytesMut;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, SyncSender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, write, or the reader died mid-wait).
    Io(std::io::Error),
    /// The connection closed before the reply arrived (EOF, shed, or
    /// decode failure on the response stream).
    Closed,
    /// No reply within the deadline.
    Timeout,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io error: {e}"),
            ClientError::Closed => write!(f, "connection closed"),
            ClientError::Timeout => write!(f, "timed out waiting for reply"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

struct ConnShared {
    pending: Mutex<HashMap<u64, SyncSender<Response>>>,
    orphans: Mutex<Vec<(u64, Response)>>,
    dead: AtomicBool,
}

impl ConnShared {
    /// Fails every waiter and refuses new ones.
    fn poison(&self) {
        self.dead.store(true, Ordering::SeqCst);
        // Dropping the senders disconnects every `PendingReply`.
        self.pending.lock().clear();
    }
}

/// One pipelined wire-protocol connection to a gateway site.
pub struct Connection {
    writer: Mutex<TcpStream>,
    stream: TcpStream,
    next_req: AtomicU64,
    shared: Arc<ConnShared>,
}

/// An in-flight request; resolves when the matching response frame lands.
pub struct PendingReply {
    /// The request id this reply is keyed on.
    pub req_id: u64,
    rx: Receiver<Response>,
}

impl PendingReply {
    /// Blocks until the response arrives, the connection dies, or the
    /// deadline passes.
    pub fn wait(&self, timeout: Duration) -> Result<Response, ClientError> {
        match self.rx.recv_timeout(timeout) {
            Ok(resp) => Ok(resp),
            Err(RecvTimeoutError::Disconnected) => Err(ClientError::Closed),
            Err(RecvTimeoutError::Timeout) => Err(ClientError::Timeout),
        }
    }
}

impl Connection {
    /// Connects to one gateway site listener and starts the reader.
    pub fn connect(addr: SocketAddr) -> Result<Connection, ClientError> {
        let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
        stream.set_nodelay(true)?;
        let shared = Arc::new(ConnShared {
            pending: Mutex::new(HashMap::new()),
            orphans: Mutex::new(Vec::new()),
            dead: AtomicBool::new(false),
        });
        let reader_stream = stream.try_clone()?;
        let reader_shared = Arc::clone(&shared);
        std::thread::spawn(move || reader_loop(reader_stream, reader_shared));
        Ok(Connection {
            writer: Mutex::new(stream.try_clone()?),
            stream,
            next_req: AtomicU64::new(1),
            shared,
        })
    }

    /// `true` once the gateway closed or shed this connection.
    pub fn is_dead(&self) -> bool {
        self.shared.dead.load(Ordering::SeqCst)
    }

    /// Sends one request and returns a handle for its reply. Many
    /// submits may be outstanding at once (pipelining).
    pub fn submit(&self, req: &Request) -> Result<PendingReply, ClientError> {
        if self.is_dead() {
            return Err(ClientError::Closed);
        }
        let req_id = self.next_req.fetch_add(1, Ordering::SeqCst);
        let (tx, rx) = bounded(1);
        self.shared.pending.lock().insert(req_id, tx);
        let mut buf = BytesMut::new();
        encode_request(req_id, req, &mut buf);
        let write = {
            let mut w = self.writer.lock();
            w.write_all(&buf)
        };
        if let Err(e) = write {
            self.shared.pending.lock().remove(&req_id);
            return Err(ClientError::Io(e));
        }
        Ok(PendingReply { req_id, rx })
    }

    /// Sends one request and waits for its reply.
    pub fn call(&self, req: &Request, timeout: Duration) -> Result<Response, ClientError> {
        self.submit(req)?.wait(timeout)
    }

    /// Responses that matched no outstanding request — connection-level
    /// errors (`req_id = 0`) and replies that raced a timeout.
    pub fn take_orphans(&self) -> Vec<(u64, Response)> {
        std::mem::take(&mut *self.shared.orphans.lock())
    }

    /// Closes the socket; outstanding waiters fail with `Closed`.
    pub fn close(&self) {
        self.shared.poison();
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

impl Drop for Connection {
    fn drop(&mut self) {
        self.close();
    }
}

/// Decodes response frames and routes them to waiters by request id.
fn reader_loop(mut stream: TcpStream, shared: Arc<ConnShared>) {
    let mut dec = Decoder::new();
    let mut chunk = [0u8; 16 * 1024];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        dec.extend(&chunk[..n]);
        loop {
            match dec.next_response() {
                Ok(None) => break,
                Ok(Some((req_id, resp))) => {
                    let fatal = matches!(
                        resp,
                        Response::Error { code: ErrorCode::Shed, .. }
                            | Response::Error { code: ErrorCode::AdmissionRefused, .. }
                    );
                    let waiter = shared.pending.lock().remove(&req_id);
                    match waiter {
                        Some(tx) => {
                            let _ = tx.try_send(resp);
                        }
                        None => shared.orphans.lock().push((req_id, resp)),
                    }
                    if fatal {
                        // The gateway is about to close the socket; fail
                        // the rest of the pipeline now.
                        shared.poison();
                        return;
                    }
                }
                Err(_) => {
                    // A response stream we cannot parse is unrecoverable.
                    shared.poison();
                    return;
                }
            }
        }
    }
    shared.poison();
}

/// A fixed set of connections used round-robin — one easy handle for a
/// many-site gateway deployment.
pub struct Pool {
    conns: Vec<Connection>,
    next: AtomicUsize,
}

impl Pool {
    /// Opens one connection per address.
    pub fn connect(addrs: &[SocketAddr]) -> Result<Pool, ClientError> {
        let conns = addrs
            .iter()
            .map(|a| Connection::connect(*a))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Pool { conns, next: AtomicUsize::new(0) })
    }

    /// Number of pooled connections.
    pub fn len(&self) -> usize {
        self.conns.len()
    }

    /// `true` when the pool holds no connections.
    pub fn is_empty(&self) -> bool {
        self.conns.is_empty()
    }

    /// The `i`-th connection (for site-targeted requests).
    pub fn get(&self, i: usize) -> &Connection {
        &self.conns[i]
    }

    /// The next connection in round-robin order.
    pub fn any(&self) -> &Connection {
        let i = self.next.fetch_add(1, Ordering::Relaxed) % self.conns.len();
        &self.conns[i]
    }
}
