//! Head-based, seeded trace sampling.
//!
//! A [`TraceSampler`] decides — deterministically, from the run seed and
//! the trace id alone — whether a trace's interior spans are retained.
//! Every site in a cluster constructs the sampler from the same
//! `SystemConfig`, so the keep/drop decision for a given trace is
//! identical everywhere: either a trace's full tree is kept on all sites
//! or only its root span survives. That cluster-wide agreement is what
//! keeps the oracle's span-tree invariant (no orphan spans) intact under
//! sampling — a retained span's parent is always retained too.
//!
//! The decision is a threshold test on a splitmix64-style finalizer of
//! `trace ⊕ mix(seed)`: uniform enough that `rate` is honoured in
//! expectation, and byte-stable across platforms because it is pure
//! integer arithmetic. `rate ≥ 1.0` short-circuits to "always sample",
//! which reproduces pre-sampling behaviour exactly.

/// SplitMix64 finalizer: a full-avalanche bijection on `u64`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-trace keep/drop decision shared by every site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSampler {
    seed: u64,
    /// `u64::MAX` means "always" (the exact pre-sampling behaviour);
    /// otherwise a trace is sampled iff `mix(trace ^ mix(seed)) < threshold`.
    threshold: u64,
    always: bool,
}

impl TraceSampler {
    /// A sampler keeping roughly `rate` (clamped to `[0, 1]`) of traces.
    pub fn new(seed: u64, rate: f64) -> Self {
        let rate = if rate.is_nan() { 1.0 } else { rate.clamp(0.0, 1.0) };
        let always = rate >= 1.0;
        let threshold = if always { u64::MAX } else { (rate * u64::MAX as f64) as u64 };
        TraceSampler { seed: mix(seed), threshold, always }
    }

    /// `true` when every trace is sampled (rate ≥ 1.0).
    pub fn is_always(&self) -> bool {
        self.always
    }

    /// Whether `trace`'s interior spans should be retained.
    pub fn sampled(&self, trace: u64) -> bool {
        self.always || mix(trace ^ self.seed) < self.threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_one_samples_everything() {
        let s = TraceSampler::new(7, 1.0);
        assert!(s.is_always());
        assert!((0..1000).all(|t| s.sampled(t)));
    }

    #[test]
    fn rate_zero_samples_nothing() {
        let s = TraceSampler::new(7, 0.0);
        assert!((0..1000).all(|t| !s.sampled(t)));
    }

    #[test]
    fn same_seed_and_rate_agree_across_instances() {
        let a = TraceSampler::new(42, 0.25);
        let b = TraceSampler::new(42, 0.25);
        assert!((0..4096).all(|t| a.sampled(t) == b.sampled(t)));
    }

    #[test]
    fn different_seeds_pick_different_sets() {
        let a = TraceSampler::new(1, 0.5);
        let b = TraceSampler::new(2, 0.5);
        assert!((0..4096).any(|t| a.sampled(t) != b.sampled(t)));
    }

    #[test]
    fn rate_is_honoured_in_expectation() {
        let s = TraceSampler::new(9, 0.1);
        let kept = (0..100_000u64).filter(|t| s.sampled(*t)).count();
        // 10% ± 1 percentage point over 100k uniform ids.
        assert!((9_000..=11_000).contains(&kept), "kept {kept}");
    }

    #[test]
    fn out_of_range_rates_clamp() {
        assert!(TraceSampler::new(0, 2.0).is_always());
        assert!(!TraceSampler::new(0, -1.0).sampled(3));
        assert!(TraceSampler::new(0, f64::NAN).is_always());
    }
}
