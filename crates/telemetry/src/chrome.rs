//! Chrome `trace_event` JSON export of a run's span trees, loadable in
//! Perfetto (ui.perfetto.dev) or `chrome://tracing`.
//!
//! Each closed span becomes one complete (`ph:"X"`) event. Sites map to
//! processes (`pid`) and traces to threads (`tid`), so Perfetto lays a
//! run out as one swim-lane per trace grouped by site, with cross-site
//! hops visible as the same `tid` appearing under several `pid`s.
//! Timestamps are the run's own clock (virtual ticks on the simulator)
//! passed through unscaled — relative widths are what matter.
//! Spans that never closed (cut short by a fault) render as zero-width
//! events flagged `"open": "true"` so they stay findable.

use crate::context::is_aux_trace;
use crate::export::RunExport;
use serde::Serialize;
use std::collections::BTreeMap;

#[derive(Serialize)]
struct ChromeEvent {
    name: String,
    cat: String,
    ph: String,
    ts: u64,
    dur: u64,
    pid: u32,
    tid: u64,
    args: BTreeMap<String, String>,
}

#[derive(Serialize)]
#[allow(non_snake_case)]
struct ChromeTrace {
    traceEvents: Vec<ChromeEvent>,
    displayTimeUnit: String,
}

/// Renders every span of `export` as Chrome `trace_event` JSON.
pub fn chrome_trace(export: &RunExport) -> String {
    let committed: std::collections::BTreeSet<u64> =
        export.outcomes.iter().filter(|o| o.committed).map(|o| o.txn).collect();
    let events = export
        .spans
        .iter()
        .map(|s| {
            let mut args = BTreeMap::new();
            args.insert("trace".to_string(), format!("{:#x}", s.trace));
            args.insert("span".to_string(), format!("{:#x}", s.span));
            if !s.detail.is_empty() {
                args.insert("detail".to_string(), s.detail.clone());
            }
            if s.end.is_none() {
                args.insert("open".to_string(), "true".to_string());
            }
            let cat = if is_aux_trace(s.trace) {
                "aux"
            } else if committed.contains(&s.trace) {
                "update"
            } else {
                "aborted"
            };
            ChromeEvent {
                name: s.name.clone(),
                cat: cat.to_string(),
                ph: "X".to_string(),
                ts: s.start,
                dur: s.end.map(|e| e.saturating_sub(s.start)).unwrap_or(0),
                pid: s.site,
                tid: s.trace,
                args,
            }
        })
        .collect();
    let trace = ChromeTrace { traceEvents: events, displayTimeUnit: "ms".to_string() };
    serde_json::to_string(&trace).expect("chrome trace serializes")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{OutcomeLine, SpanLine};

    fn sample() -> RunExport {
        let mut export = RunExport::default();
        export.spans.push(SpanLine {
            trace: 7,
            span: 1,
            parent: 0,
            site: 0,
            name: "update".into(),
            detail: "P0 \"x\"\\q".into(),
            start: 0,
            end: Some(10),
            clock: 1,
        });
        export.spans.push(SpanLine {
            trace: 7,
            span: 2,
            parent: 1,
            site: 1,
            name: "grant".into(),
            detail: String::new(),
            start: 3,
            end: None,
            clock: 2,
        });
        export.outcomes.push(OutcomeLine {
            txn: 7,
            site: 0,
            committed: true,
            detail: String::new(),
            at: 10,
            correspondences: 1,
        });
        export
    }

    #[test]
    fn emits_complete_events_with_escaped_args() {
        let json = chrome_trace(&sample());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":10"));
        // The detail's quote and backslash must be JSON-escaped.
        assert!(json.contains("P0 \\\"x\\\"\\\\q"));
        // Open span renders zero-width and flagged.
        assert!(json.contains("\"open\":\"true\""));
    }

    #[test]
    fn output_parses_back_as_json() {
        let json = chrome_trace(&sample());
        serde_json::parse_value(&json).unwrap();
    }
}
