//! The unified metrics registry: named counters, gauges, and log-scale
//! histograms, one instance per site (plus one for the network substrate).
//!
//! Keys are dotted paths (`"msg.kind.av-request"`, `"delay.shortage"`).
//! The registry is deliberately dependency-free and deterministic: no
//! clocks, no atomics — the owning runtime is already single-threaded per
//! site, and snapshots are plain serializable values.
//!
//! # Interned hot path
//!
//! Every metric name can be resolved **once** at registration into a
//! dense [`MetricId`] (one id space per kind), after which updates are
//! plain indexed stores with no hashing, no `BTreeMap` walk, and no
//! `String` allocation — the contract the 10⁵-update bench cells need.
//! The string-keyed methods ([`Registry::inc`], [`Registry::set_gauge`],
//! [`Registry::observe`], …) remain as a lookup shim for cold paths and
//! tests. Registration alone does not make a metric visible: snapshots
//! contain only metrics that were actually written, so interning ahead
//! of time never changes the exported shape.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

/// Power-of-two bucketed histogram: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`. 64 buckets cover all of `u64`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, max: 0, buckets: [0; BUCKETS] }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`0 < p ≤ 1`), linearly interpolated within the
    /// containing log₂ bucket. An estimate by construction: log-scale
    /// buckets trade precision for constant space.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// Serializable view (only non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| (i as u32, *n))
                .collect(),
        }
    }

    /// The observations recorded since `baseline` (an earlier state of
    /// this same histogram), as a mergeable snapshot. Bucket counts and
    /// `count`/`sum` subtract exactly; `max` is the running max at the
    /// window's end (per-window maxima are not recoverable from
    /// cumulative state), which keeps `merge` over consecutive deltas
    /// equal to the full-range snapshot.
    pub fn delta_snapshot(&self, baseline: &Histogram) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        self.delta_snapshot_into(baseline, &mut out);
        out
    }

    /// As [`Histogram::delta_snapshot`], but writing into a caller-owned
    /// snapshot whose bucket allocation is reused — the series roller's
    /// steady-state path, which must not allocate per window.
    pub fn delta_snapshot_into(&self, baseline: &Histogram, out: &mut HistogramSnapshot) {
        out.count = self.count - baseline.count;
        out.sum = self.sum.saturating_sub(baseline.sum);
        out.max = if self.count > baseline.count { self.max } else { 0 };
        out.buckets.clear();
        for (i, (now, was)) in self.buckets.iter().zip(baseline.buckets.iter()).enumerate() {
            if now > was {
                out.buckets.push((i as u32, now - was));
            }
        }
    }

    /// Advances this histogram by a delta previously taken against it —
    /// the allocation-free way to move a series baseline forward (the
    /// few non-empty delta buckets beat re-copying all 65).
    pub fn apply_delta(&mut self, delta: &HistogramSnapshot) {
        self.count += delta.count;
        self.sum = self.sum.saturating_add(delta.sum);
        self.max = self.max.max(delta.max);
        for &(i, n) in &delta.buckets {
            self.buckets[i as usize] += n;
        }
    }
}

/// Serializable view of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// `(bucket index, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of bucket `i` (0 → 0, else `2^i − 1`).
    fn bucket_upper(i: u32) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << (i - 1)).saturating_mul(2).saturating_sub(1)
        }
    }

    /// Lower bound of bucket `i` (0 → 0, else `2^(i−1)`).
    fn bucket_lower(i: u32) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The `p`-quantile, linearly interpolated within the containing
    /// bucket by rank position. Returning the raw bucket upper bound
    /// would quantize every readout to `2^i − 1`; interpolation keeps the
    /// estimate monotone in `p` without extra space. Pure integer
    /// arithmetic (deterministic), clamped to the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, n) in &self.buckets {
            if seen + n >= target {
                let pos = target - seen; // 1..=n, rank within the bucket
                let lower = Self::bucket_lower(*i);
                let width = Self::bucket_upper(*i) - lower;
                let v = lower + ((width as u128 * pos as u128) / *n as u128) as u64;
                return v.min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Plain-text bucket chart, one `[lo, hi] count ∎∎∎` line per
    /// non-empty bucket.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let peak = self.buckets.iter().map(|(_, n)| *n).max().unwrap_or(0).max(1);
        for (i, n) in &self.buckets {
            let bar = "∎".repeat(((n * 40).div_ceil(peak)) as usize);
            let _ = writeln!(
                out,
                "  [{:>6}, {:>6}] {:>8}  {}",
                Self::bucket_lower(*i),
                Self::bucket_upper(*i),
                n,
                bar
            );
        }
        out
    }

    /// Folds another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for (i, n) in &other.buckets {
            *merged.entry(*i).or_default() += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// Dense handle to one registered metric. Ids are per-kind (counter ids,
/// gauge ids, and histogram ids live in separate spaces) and are stable
/// for the life of the registry that minted them.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId(u32);

impl MetricId {
    /// The dense index behind this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from a dense index (only valid against the
    /// registry and kind that minted it).
    pub fn from_index(i: usize) -> MetricId {
        MetricId(i as u32)
    }
}

/// One kind's dense storage: values indexed by [`MetricId`], a name
/// table for snapshot resolution, and touched flags so registration
/// alone never leaks a zero entry into exports.
#[derive(Clone, Debug, Default)]
struct MetricTable<T> {
    names: Vec<String>,
    index: HashMap<String, u32>,
    values: Vec<T>,
    touched: Vec<bool>,
}

impl<T: Default> MetricTable<T> {
    fn id(&mut self, name: &str) -> MetricId {
        if let Some(&i) = self.index.get(name) {
            return MetricId(i);
        }
        let i = self.names.len() as u32;
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), i);
        self.values.push(T::default());
        self.touched.push(false);
        MetricId(i)
    }

    fn lookup(&self, name: &str) -> Option<MetricId> {
        self.index.get(name).map(|&i| MetricId(i))
    }

    /// Touched `(name, value)` pairs in name order (cold path only).
    fn sorted_touched(&self) -> Vec<(&str, &T)> {
        let mut out: Vec<(&str, &T)> = self
            .names
            .iter()
            .zip(self.values.iter())
            .zip(self.touched.iter())
            .filter(|(_, t)| **t)
            .map(|((n, v), _)| (n.as_str(), v))
            .collect();
        out.sort_unstable_by(|a, b| a.0.cmp(b.0));
        out
    }
}

/// A per-site registry of named counters, gauges, and histograms.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: MetricTable<u64>,
    gauges: MetricTable<i64>,
    histograms: MetricTable<Histogram>,
    /// Counter ids that moved since the last [`Registry::clear_dirty`],
    /// in first-mutation order — the series roller's incremental view,
    /// so a window roll visits only what changed instead of every
    /// registered metric. At most one entry per id (`counter_in_dirty`
    /// dedupes), so the lists stay bounded even with the series plane
    /// off.
    dirty_counters: Vec<u32>,
    counter_in_dirty: Vec<bool>,
    dirty_histograms: Vec<u32>,
    histogram_in_dirty: Vec<bool>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    // ---- registration (resolve a name to a dense id, once) ---------------

    /// Interns a counter name. Idempotent; does not make the counter
    /// visible in snapshots until it is written.
    pub fn counter_id(&mut self, name: &str) -> MetricId {
        let id = self.counters.id(name);
        self.counter_in_dirty.resize(self.counters.values.len(), false);
        id
    }

    /// Interns a gauge name (see [`Registry::counter_id`]).
    pub fn gauge_id(&mut self, name: &str) -> MetricId {
        self.gauges.id(name)
    }

    /// Interns a histogram name (see [`Registry::counter_id`]).
    pub fn histogram_id(&mut self, name: &str) -> MetricId {
        let id = self.histograms.id(name);
        self.histogram_in_dirty.resize(self.histograms.values.len(), false);
        id
    }

    /// Looks up an already-interned counter without registering it.
    pub fn find_counter(&self, name: &str) -> Option<MetricId> {
        self.counters.lookup(name)
    }

    /// Looks up an already-interned gauge without registering it.
    pub fn find_gauge(&self, name: &str) -> Option<MetricId> {
        self.gauges.lookup(name)
    }

    /// Looks up an already-interned histogram without registering it.
    pub fn find_histogram(&self, name: &str) -> Option<MetricId> {
        self.histograms.lookup(name)
    }

    // ---- interned hot path (no hashing, no allocation) -------------------

    /// Adds 1 to a registered counter.
    #[inline]
    pub fn inc_id(&mut self, id: MetricId) {
        self.add_id(id, 1);
    }

    /// Adds `n` to a registered counter.
    #[inline]
    pub fn add_id(&mut self, id: MetricId, n: u64) {
        let i = id.index();
        self.counters.values[i] += n;
        self.counters.touched[i] = true;
        if n > 0 && !self.counter_in_dirty[i] {
            self.counter_in_dirty[i] = true;
            self.dirty_counters.push(i as u32);
        }
    }

    /// Current value of a registered counter.
    #[inline]
    pub fn counter_value(&self, id: MetricId) -> u64 {
        self.counters.values[id.index()]
    }

    /// Sets a registered gauge to an absolute value.
    #[inline]
    pub fn set_gauge_id(&mut self, id: MetricId, value: i64) {
        let i = id.index();
        self.gauges.values[i] = value;
        self.gauges.touched[i] = true;
    }

    /// Current value of a registered gauge.
    #[inline]
    pub fn gauge_value(&self, id: MetricId) -> i64 {
        self.gauges.values[id.index()]
    }

    /// Records one observation into a registered histogram.
    #[inline]
    pub fn observe_id(&mut self, id: MetricId, value: u64) {
        let i = id.index();
        self.histograms.values[i].observe(value);
        self.histograms.touched[i] = true;
        if !self.histogram_in_dirty[i] {
            self.histogram_in_dirty[i] = true;
            self.dirty_histograms.push(i as u32);
        }
    }

    // ---- dense iteration (the time-series roller's view) -----------------

    /// Number of registered counters (ids are `0..len`).
    pub fn counters_len(&self) -> usize {
        self.counters.values.len()
    }

    /// Number of registered gauges.
    pub fn gauges_len(&self) -> usize {
        self.gauges.values.len()
    }

    /// Number of registered histograms.
    pub fn histograms_len(&self) -> usize {
        self.histograms.values.len()
    }

    /// Name of a registered counter.
    pub fn counter_name(&self, id: MetricId) -> &str {
        &self.counters.names[id.index()]
    }

    /// Name of a registered gauge.
    pub fn gauge_name(&self, id: MetricId) -> &str {
        &self.gauges.names[id.index()]
    }

    /// Name of a registered histogram.
    pub fn histogram_name(&self, id: MetricId) -> &str {
        &self.histograms.names[id.index()]
    }

    /// Whether a registered gauge has ever been written.
    pub fn gauge_touched(&self, id: MetricId) -> bool {
        self.gauges.touched[id.index()]
    }

    /// A registered histogram's live state.
    pub fn histogram_value(&self, id: MetricId) -> &Histogram {
        &self.histograms.values[id.index()]
    }

    // ---- dirty tracking (the series roller's drain) ----------------------

    /// Counter ids written (with a non-zero delta) since the last
    /// [`Registry::clear_dirty`], in first-mutation order. Counters are
    /// monotone, so every listed id carries a positive delta against any
    /// baseline taken at the last clear.
    pub fn dirty_counter_ids(&self) -> &[u32] {
        &self.dirty_counters
    }

    /// Histogram ids observed since the last [`Registry::clear_dirty`].
    pub fn dirty_histogram_ids(&self) -> &[u32] {
        &self.dirty_histograms
    }

    /// Resets the dirty sets. Called by the (single) series recorder
    /// after it advances its baselines past a recorded window; anything
    /// written after this call shows up in the next drain.
    pub fn clear_dirty(&mut self) {
        for &i in &self.dirty_counters {
            self.counter_in_dirty[i as usize] = false;
        }
        self.dirty_counters.clear();
        for &i in &self.dirty_histograms {
            self.histogram_in_dirty[i as usize] = false;
        }
        self.dirty_histograms.clear();
    }

    // ---- string-keyed shim (cold paths, tests) ---------------------------

    /// Adds 1 to a counter (creating it at 0).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to a counter (creating it at 0).
    pub fn add(&mut self, name: &str, n: u64) {
        let id = self.counter_id(name);
        self.add_id(id, n);
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        match self.counters.lookup(name) {
            Some(id) if self.counters.touched[id.index()] => self.counter_value(id),
            _ => 0,
        }
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters_with_prefix(prefix).map(|(_, n)| n).sum()
    }

    /// `(name, value)` for every touched counter with the given prefix,
    /// in name order.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        let hits: Vec<(&str, u64)> = self
            .counters
            .sorted_touched()
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k, *v))
            .collect();
        hits.into_iter()
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        let id = self.gauges.id(name);
        self.set_gauge_id(id, value);
    }

    /// Current gauge value (0 if never set).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.gauges.lookup(name) {
            Some(id) if self.gauges.touched[id.index()] => self.gauge_value(id),
            _ => 0,
        }
    }

    /// Records one observation into a histogram (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        let id = self.histogram_id(name);
        self.observe_id(id, value);
    }

    /// A histogram by name (`None` until its first observation).
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        match self.histograms.lookup(name) {
            Some(id) if self.histograms.touched[id.index()] => {
                Some(&self.histograms.values[id.index()])
            }
            _ => None,
        }
    }

    /// Serializable view of everything that was ever written (registered
    /// but unwritten metrics are omitted, so interning is invisible).
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .sorted_touched()
                .into_iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: self
                .gauges
                .sorted_touched()
                .into_iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: self
                .histograms
                .sorted_touched()
                .into_iter()
                .map(|(k, h)| (k.to_string(), h.snapshot()))
                .collect(),
        }
    }
}

/// Serializable view of a [`Registry`] at one instant.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Folds another snapshot into this one: counters add, gauges sum,
    /// histograms merge bucket-wise. Used to aggregate per-site
    /// registries into a system-wide view.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_default() += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_prefix_sum() {
        let mut r = Registry::new();
        r.inc("msg.kind.av-request");
        r.add("msg.kind.av-request", 2);
        r.inc("msg.kind.av-grant");
        r.inc("other");
        assert_eq!(r.counter("msg.kind.av-request"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.counter_sum("msg.kind."), 4);
        let names: Vec<_> =
            r.counters_with_prefix("msg.kind.").map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, vec!["msg.kind.av-grant", "msg.kind.av-request"]);
    }

    #[test]
    fn gauges_hold_last_value() {
        let mut r = Registry::new();
        r.set_gauge("pending", 3);
        r.set_gauge("pending", -1);
        assert_eq!(r.gauge("pending"), -1);
        assert_eq!(r.gauge("missing"), 0);
    }

    #[test]
    fn interned_ids_hit_the_same_cells_as_names() {
        let mut r = Registry::new();
        let c = r.counter_id("msg.sent.av-request");
        let g = r.gauge_id("repl.queue.depth");
        let h = r.histogram_id("update.latency.ticks");
        r.inc_id(c);
        r.add_id(c, 4);
        r.inc("msg.sent.av-request");
        r.set_gauge_id(g, 9);
        r.observe_id(h, 12);
        r.observe("update.latency.ticks", 12);
        assert_eq!(r.counter("msg.sent.av-request"), 6);
        assert_eq!(r.counter_value(c), 6);
        assert_eq!(r.gauge("repl.queue.depth"), 9);
        assert_eq!(r.histogram("update.latency.ticks").unwrap().count(), 2);
        // Re-registering returns the same id.
        assert_eq!(r.counter_id("msg.sent.av-request"), c);
    }

    #[test]
    fn registration_without_writes_is_invisible() {
        let mut r = Registry::new();
        r.counter_id("never.written");
        r.gauge_id("never.set");
        r.histogram_id("never.observed");
        let snap = r.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.histograms.is_empty());
        assert_eq!(r.counter("never.written"), 0);
        assert!(r.histogram("never.observed").is_none());
        // A zero-add still materializes the counter, as it always has.
        r.add("never.written", 0);
        assert_eq!(r.snapshot().counters.len(), 1);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        let snap = h.snapshot();
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
        // 1000 → bucket 10.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1)]);
    }

    #[test]
    fn delta_snapshot_subtracts_and_merges_back() {
        let mut h = Histogram::new();
        h.observe(3);
        h.observe(100);
        let baseline = h.clone();
        h.observe(7);
        h.observe(2000);
        let delta = h.delta_snapshot(&baseline);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 2007);
        assert_eq!(delta.max, 2000);
        // baseline snapshot + delta == full snapshot (count/sum/buckets).
        let mut merged = baseline.snapshot();
        merged.merge(&delta);
        assert_eq!(merged, h.snapshot());
        // An idle window deltas to an empty snapshot.
        let idle = h.delta_snapshot(&h.clone());
        assert_eq!(idle.count, 0);
        assert!(idle.buckets.is_empty());
        assert_eq!(idle.max, 0);
    }

    #[test]
    fn percentile_interpolates_within_the_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(1000);
        assert_eq!(h.percentile(0.50), 1);
        assert_eq!(h.percentile(0.99), 1);
        // The tail observation lands in [512, 1023]; capped at max.
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(Histogram::new().percentile(0.5), 0);

        // 50 fast + 50 slow: p75 is rank 25 of 50 inside [512, 1023] —
        // interpolated to 512 + 511·25/50 = 767, not snapped to 1023.
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.observe(1);
        }
        for _ in 0..50 {
            h.observe(1000);
        }
        assert_eq!(h.percentile(0.75), 767);
        assert_eq!(h.percentile(0.50), 1);
        // Monotone in p, never above the observed max.
        assert!(h.percentile(0.9) >= h.percentile(0.75));
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn snapshot_merge_adds() {
        let mut a = Registry::new();
        a.inc("x");
        a.observe("h", 4);
        let mut b = Registry::new();
        b.add("x", 2);
        b.inc("y");
        b.observe("h", 4);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("x"), 3);
        assert_eq!(merged.counter("y"), 1);
        assert_eq!(merged.histograms["h"].count, 2);
        assert_eq!(merged.histograms["h"].sum, 8);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut r = Registry::new();
        r.inc("a.b");
        r.set_gauge("g", -7);
        r.observe("h", 12);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn render_emits_one_line_per_bucket() {
        let mut h = Histogram::new();
        h.observe(3);
        h.observe(100);
        let text = h.snapshot().render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains('∎'));
    }
}
