//! The unified metrics registry: named counters, gauges, and log-scale
//! histograms, one instance per site (plus one for the network substrate).
//!
//! Keys are dotted paths (`"msg.kind.av-request"`, `"delay.shortage"`).
//! The registry is deliberately dependency-free and deterministic: no
//! clocks, no atomics — the owning runtime is already single-threaded per
//! site, and snapshots are plain serializable values.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Power-of-two bucketed histogram: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`. 64 buckets cover all of `u64`.
const BUCKETS: usize = 65;

/// A log₂-bucketed histogram of `u64` observations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { count: 0, sum: 0, max: 0, buckets: [0; BUCKETS] }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `p`-quantile (`0 < p ≤ 1`), linearly interpolated within the
    /// containing log₂ bucket. An estimate by construction: log-scale
    /// buckets trade precision for constant space.
    pub fn percentile(&self, p: f64) -> u64 {
        self.snapshot().percentile(p)
    }

    /// Serializable view (only non-empty buckets).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, n)| **n > 0)
                .map(|(i, n)| (i as u32, *n))
                .collect(),
        }
    }
}

/// Serializable view of a [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
    /// `(bucket index, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of bucket `i` (0 → 0, else `2^i − 1`).
    fn bucket_upper(i: u32) -> u64 {
        if i == 0 {
            0
        } else {
            (1u64 << (i - 1)).saturating_mul(2).saturating_sub(1)
        }
    }

    /// Lower bound of bucket `i` (0 → 0, else `2^(i−1)`).
    fn bucket_lower(i: u32) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The `p`-quantile, linearly interpolated within the containing
    /// bucket by rank position. Returning the raw bucket upper bound
    /// would quantize every readout to `2^i − 1`; interpolation keeps the
    /// estimate monotone in `p` without extra space. Pure integer
    /// arithmetic (deterministic), clamped to the observed max.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, n) in &self.buckets {
            if seen + n >= target {
                let pos = target - seen; // 1..=n, rank within the bucket
                let lower = Self::bucket_lower(*i);
                let width = Self::bucket_upper(*i) - lower;
                let v = lower + ((width as u128 * pos as u128) / *n as u128) as u64;
                return v.min(self.max);
            }
            seen += n;
        }
        self.max
    }

    /// Mean observation, 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Plain-text bucket chart, one `[lo, hi] count ∎∎∎` line per
    /// non-empty bucket.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let peak = self.buckets.iter().map(|(_, n)| *n).max().unwrap_or(0).max(1);
        for (i, n) in &self.buckets {
            let bar = "∎".repeat(((n * 40).div_ceil(peak)) as usize);
            let _ = writeln!(
                out,
                "  [{:>6}, {:>6}] {:>8}  {}",
                Self::bucket_lower(*i),
                Self::bucket_upper(*i),
                n,
                bar
            );
        }
        out
    }

    /// Folds another snapshot into this one (bucket-wise sum).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
        let mut merged: BTreeMap<u32, u64> = self.buckets.iter().copied().collect();
        for (i, n) in &other.buckets {
            *merged.entry(*i).or_default() += n;
        }
        self.buckets = merged.into_iter().collect();
    }
}

/// A per-site registry of named counters, gauges, and histograms.
#[derive(Clone, Debug, Default)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds 1 to a counter (creating it at 0).
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `n` to a counter (creating it at 0).
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters_with_prefix(prefix).map(|(_, n)| n).sum()
    }

    /// `(name, value)` for every counter with the given prefix.
    pub fn counters_with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, u64)> + 'a {
        self.counters
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
            .map(|(k, v)| (k.as_str(), *v))
    }

    /// Sets a gauge to an absolute value.
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        if let Some(g) = self.gauges.get_mut(name) {
            *g = value;
        } else {
            self.gauges.insert(name.to_string(), value);
        }
    }

    /// Current gauge value (0 if never set).
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Records one observation into a histogram (creating it empty).
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// A histogram by name.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Serializable view of everything.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
        }
    }
}

/// Serializable view of a [`Registry`] at one instant.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-set gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// Counter value (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of all counters whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| v)
            .sum()
    }

    /// Folds another snapshot into this one: counters add, gauges sum,
    /// histograms merge bucket-wise. Used to aggregate per-site
    /// registries into a system-wide view.
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_default() += v;
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_prefix_sum() {
        let mut r = Registry::new();
        r.inc("msg.kind.av-request");
        r.add("msg.kind.av-request", 2);
        r.inc("msg.kind.av-grant");
        r.inc("other");
        assert_eq!(r.counter("msg.kind.av-request"), 3);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.counter_sum("msg.kind."), 4);
        let names: Vec<_> =
            r.counters_with_prefix("msg.kind.").map(|(k, _)| k.to_string()).collect();
        assert_eq!(names, vec!["msg.kind.av-grant", "msg.kind.av-request"]);
    }

    #[test]
    fn gauges_hold_last_value() {
        let mut r = Registry::new();
        r.set_gauge("pending", 3);
        r.set_gauge("pending", -1);
        assert_eq!(r.gauge("pending"), -1);
        assert_eq!(r.gauge("missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max(), 1000);
        let snap = h.snapshot();
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
        // 1000 → bucket 10.
        assert_eq!(snap.buckets, vec![(0, 1), (1, 1), (2, 2), (3, 1), (10, 1)]);
    }

    #[test]
    fn percentile_interpolates_within_the_bucket() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.observe(1);
        }
        h.observe(1000);
        assert_eq!(h.percentile(0.50), 1);
        assert_eq!(h.percentile(0.99), 1);
        // The tail observation lands in [512, 1023]; capped at max.
        assert_eq!(h.percentile(1.0), 1000);
        assert_eq!(Histogram::new().percentile(0.5), 0);

        // 50 fast + 50 slow: p75 is rank 25 of 50 inside [512, 1023] —
        // interpolated to 512 + 511·25/50 = 767, not snapped to 1023.
        let mut h = Histogram::new();
        for _ in 0..50 {
            h.observe(1);
        }
        for _ in 0..50 {
            h.observe(1000);
        }
        assert_eq!(h.percentile(0.75), 767);
        assert_eq!(h.percentile(0.50), 1);
        // Monotone in p, never above the observed max.
        assert!(h.percentile(0.9) >= h.percentile(0.75));
        assert_eq!(h.percentile(1.0), 1000);
    }

    #[test]
    fn snapshot_merge_adds() {
        let mut a = Registry::new();
        a.inc("x");
        a.observe("h", 4);
        let mut b = Registry::new();
        b.add("x", 2);
        b.inc("y");
        b.observe("h", 4);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counter("x"), 3);
        assert_eq!(merged.counter("y"), 1);
        assert_eq!(merged.histograms["h"].count, 2);
        assert_eq!(merged.histograms["h"].sum, 8);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut r = Registry::new();
        r.inc("a.b");
        r.set_gauge("g", -7);
        r.observe("h", 12);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn render_emits_one_line_per_bucket() {
        let mut h = Histogram::new();
        h.observe(3);
        h.observe(100);
        let text = h.snapshot().render();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains('∎'));
    }
}
