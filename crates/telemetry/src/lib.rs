#![warn(missing_docs)]

//! # avdb-telemetry
//!
//! Structured causal tracing and a unified metrics registry for the avdb
//! reproduction — with zero external dependencies beyond the vendored
//! serde stubs, so it runs identically under the deterministic simulator,
//! the threaded live runner, and the TCP mesh.
//!
//! Three pieces:
//!
//! * [`TraceContext`] — trace id + parent span + Lamport clock,
//!   piggybacked on every protocol message so one update's full causal
//!   tree is reconstructible across sites and transports.
//! * [`Registry`] — per-site named counters, gauges, and log₂-bucketed
//!   [`Histogram`]s (message counts by kind, AV shortage depth,
//!   candidate-list staleness, per-phase latencies).
//! * [`RunExport`] — a JSONL span/event exporter consumed by the
//!   `avdb-trace` binary ([`analyze`] holds the tree reconstruction and
//!   latency breakdowns it prints).
//!
//! Determinism contract: nothing here reads clocks or RNGs; span ids are
//! minted per site from a sequence counter using the same
//! `site << 40 | seq` split as `TxnId`, so a seeded simulator run
//! produces bit-identical telemetry.

pub mod analyze;
pub mod chrome;
pub mod context;
pub mod critical_path;
pub mod export;
pub mod flight;
pub mod message_log;
pub mod prometheus;
pub mod registry;
pub mod sampling;
pub mod slo;
pub mod span;
pub mod timeseries;

pub use chrome::chrome_trace;
pub use context::{aux_trace_id, is_aux_trace, TraceContext, AUX_TRACE_FLAG};
pub use critical_path::{
    build_profile, critical_path, path_for_trace, profile_export, render_path, CriticalPath,
    Exemplar, PathNode, PhaseProfile, ProfileBuilder, SpanView, PROFILE_EXEMPLARS,
};
pub use export::{
    for_each_line, ExportLine, MessageLine, MetaLine, OutcomeLine, RegistryLine, RunExport,
    SeriesLine, SpanLine,
};
pub use flight::{FlightDump, FlightEvent, FlightRecorder, SiteFlight, DEFAULT_FLIGHT_CAPACITY};
pub use message_log::{render_sequence, MessageEvent, MessageLog};
pub use prometheus::{
    metric_families, metric_name, render_prometheus, render_series_prometheus,
    validate_exposition,
};
pub use registry::{Histogram, HistogramSnapshot, MetricId, Registry, RegistrySnapshot};
pub use sampling::TraceSampler;
pub use slo::{
    evaluate as evaluate_slo, LaneReport, LaneSlo, SloHealth, SloReport, SloSpec, LANE_DELAY,
    LANE_IMM,
};
pub use span::{SpanCollector, SpanRecord, DEFAULT_SPAN_RING_CAPACITY};
pub use timeseries::{
    sparkline, RollOutcome, SeriesRecorder, SeriesSnapshot, SeriesWindowSnapshot, WatchdogConfig,
    WatchdogFiring, DEFAULT_SERIES_RING_CAPACITY,
};
