//! The message delivery log (the old simnet `Trace`, generalized).
//!
//! Every delivered message is recorded with its piggybacked
//! [`TraceContext`], so the log both drives the Fig. 3–5 chart
//! assertions (via [`MessageLog::sequence`]) and stitches into the span
//! trees (via the context).

use crate::context::TraceContext;
use avdb_types::{SiteId, VirtualTime};
use serde::Serialize;

/// One delivered message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct MessageEvent {
    /// Delivery time.
    pub at: VirtualTime,
    /// Sender.
    pub from: SiteId,
    /// Receiver.
    pub to: SiteId,
    /// Message kind label (see the substrate's `MsgInfo::kind`).
    pub kind: &'static str,
    /// Causal context piggybacked on the message, when the protocol
    /// attached one.
    pub ctx: Option<TraceContext>,
}

/// Recorded message deliveries, in delivery order.
#[derive(Clone, Debug, Default)]
pub struct MessageLog {
    events: Vec<MessageEvent>,
    enabled: bool,
}

impl MessageLog {
    /// Disabled log (zero recording cost beyond a branch).
    pub fn new() -> Self {
        Self::default()
    }

    /// An enabled log (live transports record unconditionally).
    pub fn enabled() -> Self {
        let mut log = Self::default();
        log.enable();
        log
    }

    /// Starts recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// `true` while recording.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one delivery if enabled.
    pub fn record(
        &mut self,
        at: VirtualTime,
        from: SiteId,
        to: SiteId,
        kind: &'static str,
        ctx: Option<TraceContext>,
    ) {
        if self.enabled {
            self.events.push(MessageEvent { at, from, to, kind, ctx });
        }
    }

    /// All recorded deliveries.
    pub fn events(&self) -> &[MessageEvent] {
        &self.events
    }

    /// `(from, to, kind)` triples in delivery order — the shape asserted
    /// by the Fig. 3–5 chart tests.
    pub fn sequence(&self) -> Vec<(SiteId, SiteId, &'static str)> {
        self.events.iter().map(|e| (e.from, e.to, e.kind)).collect()
    }

    /// Clears recorded events (keeps the enabled flag).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Renders a log as a text sequence chart, one line per message:
/// `t=3  site1 ──av-request──▶ site0`.
pub fn render_sequence(log: &MessageLog) -> String {
    let mut out = String::new();
    for e in log.events() {
        out.push_str(&format!(
            "t={:<4} {} ──{}──▶ {}\n",
            e.at.ticks(),
            e.from,
            e.kind,
            e.to
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut t = MessageLog::new();
        assert!(!t.is_enabled());
        t.record(VirtualTime(1), SiteId(0), SiteId(1), "x", None);
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut t = MessageLog::new();
        t.enable();
        t.record(VirtualTime(1), SiteId(0), SiteId(1), "a", None);
        t.record(
            VirtualTime(2),
            SiteId(1),
            SiteId(0),
            "b",
            Some(TraceContext::root(7, 1)),
        );
        assert_eq!(
            t.sequence(),
            vec![(SiteId(0), SiteId(1), "a"), (SiteId(1), SiteId(0), "b")]
        );
        assert_eq!(t.events()[1].ctx.unwrap().trace_id, 7);
        t.clear();
        assert!(t.events().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn render_is_one_line_per_message() {
        let mut t = MessageLog::enabled();
        t.record(VirtualTime(3), SiteId(1), SiteId(0), "av-request", None);
        let text = render_sequence(&t);
        assert_eq!(text.lines().count(), 1);
        assert!(text.contains("site1"));
        assert!(text.contains("av-request"));
        assert!(text.contains("site0"));
    }
}
