//! Windowed time-series plane: rolls a [`Registry`] into fixed-width
//! sim-tick windows and watches the windows for anomalies.
//!
//! A [`SeriesRecorder`] owns the previous window boundary's baseline and,
//! each time the owner's window timer fires, produces one window of
//! * counter **deltas** (non-zero only),
//! * gauge **last values** (every touched gauge), and
//! * histogram **delta snapshots** (mergeable: concatenating consecutive
//!   windows' deltas reproduces the full-range snapshot),
//! held in a bounded ring whose evicted buffers are pooled and reused, so
//! steady-state rolling allocates nothing new.
//!
//! Windows are aligned to absolute tick boundaries (`end = k·width`) and
//! indexed `end/width − 1`; idle windows are never recorded, so the ring
//! may contain index gaps — each recorded window still covers exactly one
//! width and all deltas in it occurred inside it (the owner only lets the
//! timer lapse when nothing is happening).
//!
//! The [`Watchdog`] evaluates window-over-window rules on every recorded
//! window — replication queue-depth growth, knowledge staleness above a
//! bound, abort-rate spikes against the trailing mean — and reports a
//! firing exactly on each rule's false→true transition, so the owner can
//! dump the flight recorder *before* an invariant trips. Everything here
//! is integer arithmetic over the deterministic registry: same seed, same
//! series, same firings.

use crate::registry::{Histogram, HistogramSnapshot, MetricId, Registry};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Default bound on the per-site window ring.
pub const DEFAULT_SERIES_RING_CAPACITY: usize = 64;

/// One rolled window, dense-id keyed (names resolve at snapshot time).
#[derive(Clone, Debug, Default)]
struct WindowBuf {
    index: u64,
    start: u64,
    end: u64,
    /// `(counter id, delta)` for counters that moved this window.
    counters: Vec<(u32, u64)>,
    /// `(gauge id, last value)` for every touched gauge.
    gauges: Vec<(u32, i64)>,
    /// `(histogram id, delta)` for histograms that observed this window.
    histograms: Vec<(u32, HistogramSnapshot)>,
}

impl WindowBuf {
    fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

/// One window, resolved to metric names — the serializable view used by
/// `/status`, the JSONL `series` scope, and the renderers.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesWindowSnapshot {
    /// Window number: `end / window_ticks − 1`.
    pub index: u64,
    /// First tick covered (inclusive).
    pub start: u64,
    /// End boundary (exclusive).
    pub end: u64,
    /// Counter deltas over the window (non-zero only).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at the window's end (every touched gauge).
    pub gauges: BTreeMap<String, i64>,
    /// Histogram deltas over the window (non-empty only).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// The whole ring, resolved to names.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeriesSnapshot {
    /// Window width in sim ticks.
    pub window_ticks: u64,
    /// Recorded windows, oldest first.
    pub windows: Vec<SeriesWindowSnapshot>,
}

impl SeriesSnapshot {
    /// The last `n` windows' deltas for one counter, oldest first
    /// (missing-in-window = 0). Sparkline feed.
    pub fn counter_tail(&self, name: &str, n: usize) -> Vec<u64> {
        let skip = self.windows.len().saturating_sub(n);
        self.windows
            .iter()
            .skip(skip)
            .map(|w| w.counters.get(name).copied().unwrap_or(0))
            .collect()
    }

    /// The last `n` windows' values for one gauge, oldest first
    /// (missing-in-window = 0).
    pub fn gauge_tail(&self, name: &str, n: usize) -> Vec<i64> {
        let skip = self.windows.len().saturating_sub(n);
        self.windows
            .iter()
            .skip(skip)
            .map(|w| w.gauges.get(name).copied().unwrap_or(0))
            .collect()
    }

    /// The most recent window, if any.
    pub fn latest(&self) -> Option<&SeriesWindowSnapshot> {
        self.windows.last()
    }
}

/// Unicode sparkline over `values` (one glyph per value, ▁..█ scaled to
/// the slice's peak; all-zero renders as a flat baseline).
pub fn sparkline(values: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let peak = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|v| if peak == 0 { BARS[0] } else { BARS[((v * 7) / peak) as usize] })
        .collect()
}

/// Watchdog rule thresholds. All integer, all deterministic.
#[derive(Clone, Debug, PartialEq)]
pub struct WatchdogConfig {
    /// Gauge watched by the queue-growth rule.
    pub queue_gauge: String,
    /// Queue-growth fires after this many consecutive strictly-growing
    /// windows…
    pub queue_growth_windows: u32,
    /// …and only once the gauge is at least this deep.
    pub queue_depth_floor: i64,
    /// Gauge-name prefix scanned (max value wins) by the staleness rule.
    pub staleness_prefix: String,
    /// Staleness fires when the max gauge stays above this bound…
    pub staleness_bound: i64,
    /// …for this many consecutive recorded windows.
    pub staleness_windows: u32,
    /// Counter watched by the abort-spike rule.
    pub abort_counter: String,
    /// Spike = this window's delta ≥ factor × trailing-mean (rounded up).
    pub abort_spike_factor: u64,
    /// Spikes below this absolute delta never fire.
    pub abort_spike_min: u64,
    /// Trailing-mean horizon (recorded windows).
    pub abort_trailing_windows: usize,
}

impl WatchdogConfig {
    /// Defaults scaled to a window width: the staleness bound is four
    /// windows' worth of ticks (a replica whose knowledge of a peer is
    /// older than that, and stays that old, is trending away from its
    /// bound, not merely lagging one round-trip).
    pub fn for_window(window_ticks: u64) -> Self {
        WatchdogConfig {
            queue_gauge: "repl.queue.depth".to_string(),
            queue_growth_windows: 3,
            queue_depth_floor: 32,
            staleness_prefix: "knowledge.staleness.".to_string(),
            staleness_bound: (window_ticks.saturating_mul(4)).max(1) as i64,
            staleness_windows: 2,
            abort_counter: "update.aborted".to_string(),
            abort_spike_factor: 4,
            abort_spike_min: 8,
            abort_trailing_windows: 8,
        }
    }
}

/// One rule transition from quiet to firing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WatchdogFiring {
    /// Rule name: `"queue-depth-growth"`, `"staleness-bound"`, or
    /// `"abort-spike"`.
    pub rule: String,
    /// Index of the window that tripped the rule.
    pub window: u64,
    /// Human-readable trigger values.
    pub detail: String,
}

/// Window-over-window anomaly rules with per-rule latching: a rule
/// reports once when its condition becomes true and re-arms only after
/// the condition clears.
#[derive(Clone, Debug)]
struct Watchdog {
    cfg: WatchdogConfig,
    queue_prev: Option<i64>,
    queue_streak: u32,
    queue_active: bool,
    staleness_streak: u32,
    staleness_active: bool,
    abort_history: VecDeque<u64>,
    abort_active: bool,
}

impl Watchdog {
    fn new(cfg: WatchdogConfig) -> Self {
        Watchdog {
            cfg,
            queue_prev: None,
            queue_streak: 0,
            queue_active: false,
            staleness_streak: 0,
            staleness_active: false,
            abort_history: VecDeque::new(),
            abort_active: false,
        }
    }

    fn evaluate(
        &mut self,
        window: u64,
        queue_depth: Option<i64>,
        staleness_max: Option<i64>,
        abort_delta: u64,
        out: &mut Vec<WatchdogFiring>,
    ) {
        // Queue-depth growth: strictly increasing for N windows, deep
        // enough to matter.
        if let Some(depth) = queue_depth {
            match self.queue_prev {
                Some(prev) if depth > prev => self.queue_streak += 1,
                _ => self.queue_streak = 0,
            }
            self.queue_prev = Some(depth);
            let firing = self.queue_streak >= self.cfg.queue_growth_windows
                && depth >= self.cfg.queue_depth_floor;
            if firing && !self.queue_active {
                out.push(WatchdogFiring {
                    rule: "queue-depth-growth".to_string(),
                    window,
                    detail: format!(
                        "{} grew {} consecutive windows to {depth}",
                        self.cfg.queue_gauge, self.queue_streak
                    ),
                });
            }
            self.queue_active = firing;
        }

        // Staleness trend: max staleness gauge above bound for N windows.
        if let Some(stale) = staleness_max {
            if stale > self.cfg.staleness_bound {
                self.staleness_streak += 1;
            } else {
                self.staleness_streak = 0;
            }
            let firing = self.staleness_streak >= self.cfg.staleness_windows;
            if firing && !self.staleness_active {
                out.push(WatchdogFiring {
                    rule: "staleness-bound".to_string(),
                    window,
                    detail: format!(
                        "max {}* = {stale} > bound {} for {} windows",
                        self.cfg.staleness_prefix,
                        self.cfg.staleness_bound,
                        self.staleness_streak
                    ),
                });
            }
            self.staleness_active = firing;
        }

        // Abort spike vs trailing mean (mean rounded up; an empty history
        // means any delta ≥ min is a spike).
        let trailing: u64 = self.abort_history.iter().sum();
        let mean_ceil = if self.abort_history.is_empty() {
            0
        } else {
            trailing.div_ceil(self.abort_history.len() as u64)
        };
        let firing = abort_delta >= self.cfg.abort_spike_min
            && abort_delta >= self.cfg.abort_spike_factor.saturating_mul(mean_ceil.max(1));
        if firing && !self.abort_active {
            out.push(WatchdogFiring {
                rule: "abort-spike".to_string(),
                window,
                detail: format!(
                    "{} +{abort_delta} this window vs trailing mean {mean_ceil}",
                    self.cfg.abort_counter
                ),
            });
        }
        self.abort_active = firing;
        self.abort_history.push_back(abort_delta);
        while self.abort_history.len() > self.cfg.abort_trailing_windows {
            self.abort_history.pop_front();
        }
    }
}

/// Result of one [`SeriesRecorder::roll`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RollOutcome {
    /// `true` when the window had content and was recorded.
    pub recorded: bool,
    /// Watchdog rules that transitioned to firing on this window.
    pub firings: Vec<WatchdogFiring>,
}

/// Watchdog metric ids resolved once per registry growth spurt, so the
/// per-window rule inputs cost id loads instead of name lookups.
#[derive(Clone, Debug, Default)]
struct WatchIds {
    gauges_seen: usize,
    counters_seen: usize,
    queue: Option<MetricId>,
    abort: Option<MetricId>,
    staleness: Vec<MetricId>,
}

/// Rolls a [`Registry`] into a bounded ring of fixed-width windows.
#[derive(Clone, Debug)]
pub struct SeriesRecorder {
    window_ticks: u64,
    capacity: usize,
    /// Counter values at the last recorded boundary, dense by id.
    prev_counters: Vec<u64>,
    /// Gauge values at the last recorded boundary, dense by id.
    prev_gauges: Vec<i64>,
    prev_gauge_touched: Vec<bool>,
    /// Full histogram state at the last recorded boundary, dense by id.
    prev_histograms: Vec<Histogram>,
    ring: VecDeque<WindowBuf>,
    /// Evicted buffers, kept to reuse their allocations.
    pool: Vec<WindowBuf>,
    /// Retired histogram deltas, kept to reuse their bucket allocations.
    snap_pool: Vec<HistogramSnapshot>,
    watchdog: Watchdog,
    watch_ids: WatchIds,
}

impl SeriesRecorder {
    /// A recorder with the default ring bound and watchdog thresholds
    /// scaled to `window_ticks` (which must be non-zero — a zero width
    /// means the series plane is off and no recorder should exist).
    pub fn new(window_ticks: u64) -> Self {
        Self::with_capacity(window_ticks, DEFAULT_SERIES_RING_CAPACITY)
    }

    /// A recorder with an explicit ring bound.
    pub fn with_capacity(window_ticks: u64, capacity: usize) -> Self {
        assert!(window_ticks > 0, "series window width must be non-zero");
        let watchdog = Watchdog::new(WatchdogConfig::for_window(window_ticks));
        SeriesRecorder {
            window_ticks,
            capacity: capacity.max(1),
            prev_counters: Vec::new(),
            prev_gauges: Vec::new(),
            prev_gauge_touched: Vec::new(),
            prev_histograms: Vec::new(),
            ring: VecDeque::new(),
            pool: Vec::new(),
            snap_pool: Vec::new(),
            watchdog,
            watch_ids: WatchIds::default(),
        }
    }

    /// Replaces the watchdog thresholds (resets rule state).
    pub fn set_watchdog(&mut self, cfg: WatchdogConfig) {
        self.watchdog = Watchdog::new(cfg);
        self.watch_ids = WatchIds::default();
    }

    /// Window width in ticks.
    pub fn window_ticks(&self) -> u64 {
        self.window_ticks
    }

    /// Number of windows currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` when no window has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// The next boundary strictly after `now` (where the owner should
    /// set its window timer).
    pub fn next_boundary(&self, now: u64) -> u64 {
        (now / self.window_ticks + 1) * self.window_ticks
    }

    /// Closes the window ending at the last boundary at or before `at`:
    /// drains the registry's dirty sets against the last recorded
    /// baseline, records a window if anything moved, and runs the
    /// watchdog over it. An idle window records nothing and leaves the
    /// watchdog untouched, so the owner can let its timer lapse.
    ///
    /// The recorder must be the registry's only drain consumer: a
    /// recorded window calls [`Registry::clear_dirty`] as it advances
    /// its baselines, so the roll visits only the metrics that moved
    /// since the previous recorded boundary — O(activity), not
    /// O(registered metrics) — and never clones an untouched histogram.
    ///
    /// Under the sim clock a window timer fires exactly at its boundary,
    /// so `at` IS the boundary. The live transports' virtual clocks can
    /// run past the armed boundary before the timer is serviced; the
    /// overshoot's deltas then land in the window holding `at`, which
    /// keeps boundaries aligned without mislabelling a window as earlier
    /// than the activity it records.
    pub fn roll(&mut self, at: u64, reg: &mut Registry) -> RollOutcome {
        let end = at - at % self.window_ticks;
        if end == 0 {
            return RollOutcome { recorded: false, firings: Vec::new() };
        }
        self.grow_baselines(reg);

        let mut buf = self.pool.pop().unwrap_or_default();
        buf.reset();
        buf.index = end / self.window_ticks - 1;
        buf.start = end - self.window_ticks;
        buf.end = end;

        let mut changed = false;
        for &i in reg.dirty_counter_ids() {
            let i = i as usize;
            let now = reg.counter_value(MetricId::from_index(i));
            let delta = now - self.prev_counters[i];
            if delta > 0 {
                buf.counters.push((i as u32, delta));
                changed = true;
            }
        }
        for i in 0..reg.gauges_len() {
            let id = MetricId::from_index(i);
            if !reg.gauge_touched(id) {
                continue;
            }
            let now = reg.gauge_value(id);
            if !self.prev_gauge_touched[i] || now != self.prev_gauges[i] {
                changed = true;
            }
            buf.gauges.push((i as u32, now));
        }
        for &i in reg.dirty_histogram_ids() {
            let i = i as usize;
            let now = reg.histogram_value(MetricId::from_index(i));
            if now.count() > self.prev_histograms[i].count() {
                let mut snap = self.snap_pool.pop().unwrap_or_default();
                now.delta_snapshot_into(&self.prev_histograms[i], &mut snap);
                buf.histograms.push((i as u32, snap));
                changed = true;
            }
        }

        if !changed {
            buf.reset();
            self.pool.push(buf);
            return RollOutcome { recorded: false, firings: Vec::new() };
        }

        // Advance the baseline to this boundary — only what moved (the
        // rest is untouched since the last recorded window by
        // construction) — then reset the dirty sets for the next window.
        for &(i, delta) in &buf.counters {
            self.prev_counters[i as usize] += delta;
        }
        for &(i, v) in &buf.gauges {
            self.prev_gauges[i as usize] = v;
            self.prev_gauge_touched[i as usize] = true;
        }
        for (i, delta) in &buf.histograms {
            self.prev_histograms[*i as usize].apply_delta(delta);
        }
        reg.clear_dirty();

        // Watchdog inputs, read off the window just built via cached ids.
        self.refresh_watch_ids(reg);
        let queue_depth = self
            .watch_ids
            .queue
            .filter(|id| reg.gauge_touched(*id))
            .map(|id| reg.gauge_value(id));
        let mut staleness_max: Option<i64> = None;
        for &id in &self.watch_ids.staleness {
            if reg.gauge_touched(id) {
                let v = reg.gauge_value(id);
                staleness_max = Some(staleness_max.map_or(v, |m| m.max(v)));
            }
        }
        let abort_delta = self
            .watch_ids
            .abort
            .and_then(|id| {
                buf.counters
                    .iter()
                    .find(|(i, _)| *i as usize == id.index())
                    .map(|(_, d)| *d)
            })
            .unwrap_or(0);

        let mut firings = Vec::new();
        self.watchdog
            .evaluate(buf.index, queue_depth, staleness_max, abort_delta, &mut firings);

        if self.ring.len() == self.capacity {
            let mut evicted = self.ring.pop_front().expect("ring non-empty at capacity");
            self.snap_pool.extend(evicted.histograms.drain(..).map(|(_, s)| s));
            evicted.reset();
            self.pool.push(evicted);
        }
        self.ring.push_back(buf);
        RollOutcome { recorded: true, firings }
    }

    /// Resolves the ring to metric names for serialization.
    pub fn snapshot(&self, reg: &Registry) -> SeriesSnapshot {
        SeriesSnapshot {
            window_ticks: self.window_ticks,
            windows: self.ring.iter().map(|w| Self::resolve(w, reg)).collect(),
        }
    }

    fn resolve(buf: &WindowBuf, reg: &Registry) -> SeriesWindowSnapshot {
        SeriesWindowSnapshot {
            index: buf.index,
            start: buf.start,
            end: buf.end,
            counters: buf
                .counters
                .iter()
                .map(|(i, d)| (reg.counter_name(MetricId::from_index(*i as usize)).to_string(), *d))
                .collect(),
            gauges: buf
                .gauges
                .iter()
                .map(|(i, v)| (reg.gauge_name(MetricId::from_index(*i as usize)).to_string(), *v))
                .collect(),
            histograms: buf
                .histograms
                .iter()
                .map(|(i, h)| {
                    (reg.histogram_name(MetricId::from_index(*i as usize)).to_string(), h.clone())
                })
                .collect(),
        }
    }

    /// Re-resolves the watchdog's metric ids when (and only when) the
    /// registry has registered new metrics since the last resolution —
    /// ids are dense and append-only, so existing ids never move.
    fn refresh_watch_ids(&mut self, reg: &Registry) {
        let cfg = &self.watchdog.cfg;
        if self.watch_ids.gauges_seen != reg.gauges_len() {
            self.watch_ids.gauges_seen = reg.gauges_len();
            self.watch_ids.queue = reg.find_gauge(&cfg.queue_gauge);
            self.watch_ids.staleness.clear();
            for i in 0..reg.gauges_len() {
                let id = MetricId::from_index(i);
                if reg.gauge_name(id).starts_with(&cfg.staleness_prefix) {
                    self.watch_ids.staleness.push(id);
                }
            }
        }
        if self.watch_ids.counters_seen != reg.counters_len() {
            self.watch_ids.counters_seen = reg.counters_len();
            self.watch_ids.abort = reg.find_counter(&cfg.abort_counter);
        }
    }

    fn grow_baselines(&mut self, reg: &Registry) {
        self.prev_counters.resize(reg.counters_len(), 0);
        self.prev_gauges.resize(reg.gauges_len(), 0);
        self.prev_gauge_touched.resize(reg.gauges_len(), false);
        self.prev_histograms.resize(reg.histograms_len(), Histogram::default());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(counts: &[(&str, u64)]) -> Registry {
        let mut r = Registry::new();
        for (k, n) in counts {
            r.add(k, *n);
        }
        r
    }

    #[test]
    fn windows_hold_deltas_not_totals() {
        let mut reg = reg_with(&[("update.committed", 5)]);
        let mut rec = SeriesRecorder::new(100);
        assert!(rec.roll(100, &mut reg).recorded);
        reg.add("update.committed", 3);
        assert!(rec.roll(200, &mut reg).recorded);
        let snap = rec.snapshot(&reg);
        assert_eq!(snap.windows.len(), 2);
        assert_eq!(snap.windows[0].counters["update.committed"], 5);
        assert_eq!(snap.windows[1].counters["update.committed"], 3);
        assert_eq!(snap.windows[0].index, 0);
        assert_eq!(snap.windows[1].index, 1);
        assert_eq!(snap.counter_tail("update.committed", 8), vec![5, 3]);
    }

    #[test]
    fn idle_windows_are_skipped_and_gaps_allowed() {
        let mut reg = reg_with(&[("x", 1)]);
        let mut rec = SeriesRecorder::new(10);
        assert!(rec.roll(10, &mut reg).recorded);
        // Nothing moved: not recorded, baseline unchanged.
        assert!(!rec.roll(20, &mut reg).recorded);
        reg.add("x", 7);
        assert!(rec.roll(50, &mut reg).recorded);
        let snap = rec.snapshot(&reg);
        assert_eq!(snap.windows.len(), 2);
        assert_eq!(snap.windows[1].index, 4, "gap preserved");
        assert_eq!(snap.windows[1].counters["x"], 7);
    }

    #[test]
    fn ring_rolls_over_at_capacity() {
        let mut reg = Registry::new();
        let mut rec = SeriesRecorder::with_capacity(10, 3);
        for w in 1..=5u64 {
            reg.add("x", w);
            assert!(rec.roll(w * 10, &mut reg).recorded);
        }
        let snap = rec.snapshot(&reg);
        assert_eq!(snap.windows.len(), 3);
        let idx: Vec<u64> = snap.windows.iter().map(|w| w.index).collect();
        assert_eq!(idx, vec![2, 3, 4], "oldest evicted first");
        assert_eq!(snap.windows[2].counters["x"], 5);
    }

    #[test]
    fn gauges_record_last_value_every_window() {
        let mut reg = Registry::new();
        reg.set_gauge("depth", 4);
        let mut rec = SeriesRecorder::new(10);
        assert!(rec.roll(10, &mut reg).recorded);
        // Unchanged gauge alone isn't content…
        assert!(!rec.roll(20, &mut reg).recorded);
        // …but it rides along when something else moved.
        reg.inc("x");
        assert!(rec.roll(30, &mut reg).recorded);
        let snap = rec.snapshot(&reg);
        assert_eq!(snap.windows[1].gauges["depth"], 4);
        assert_eq!(snap.gauge_tail("depth", 2), vec![4, 4]);
    }

    #[test]
    fn histogram_window_merge_reproduces_total() {
        let mut reg = Registry::new();
        let mut rec = SeriesRecorder::new(10);
        reg.observe("lat", 3);
        reg.observe("lat", 900);
        rec.roll(10, &mut reg);
        reg.observe("lat", 7);
        rec.roll(20, &mut reg);
        reg.observe("lat", 31);
        reg.observe("lat", 5000);
        rec.roll(30, &mut reg);
        let snap = rec.snapshot(&reg);
        let mut merged = HistogramSnapshot::default();
        for w in &snap.windows {
            merged.merge(&w.histograms["lat"]);
        }
        assert_eq!(merged, reg.histogram("lat").unwrap().snapshot());
    }

    #[test]
    fn same_inputs_same_series() {
        let run = || {
            let mut reg = Registry::new();
            let mut rec = SeriesRecorder::new(10);
            for w in 1..=6u64 {
                reg.add("a", w);
                reg.set_gauge("g", w as i64 * 3);
                reg.observe("h", w * 10);
                rec.roll(w * 10, &mut reg);
            }
            serde_json::to_string(&rec.snapshot(&reg)).unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn watchdog_queue_growth_fires_once_per_episode() {
        let mut reg = Registry::new();
        let mut rec = SeriesRecorder::new(10);
        let mut firings = Vec::new();
        for w in 1..=6u64 {
            reg.inc("tick");
            reg.set_gauge("repl.queue.depth", (w * 40) as i64);
            firings.extend(rec.roll(w * 10, &mut reg).firings);
        }
        let queue: Vec<_> =
            firings.iter().filter(|f| f.rule == "queue-depth-growth").collect();
        assert_eq!(queue.len(), 1, "latched after the transition: {firings:?}");
        assert_eq!(queue[0].window, 3, "3 growth windows after the first sample");
    }

    #[test]
    fn watchdog_staleness_fires_above_bound() {
        let mut reg = Registry::new();
        let mut rec = SeriesRecorder::new(10); // bound = 40
        let mut firings = Vec::new();
        for w in 1..=4u64 {
            reg.inc("tick");
            reg.set_gauge("knowledge.staleness.s2", 100 + w as i64);
            firings.extend(rec.roll(w * 10, &mut reg).firings);
        }
        let stale: Vec<_> = firings.iter().filter(|f| f.rule == "staleness-bound").collect();
        assert_eq!(stale.len(), 1);
        assert_eq!(stale[0].window, 1, "two windows above bound");
    }

    #[test]
    fn watchdog_abort_spike_compares_to_trailing_mean() {
        let mut reg = Registry::new();
        let mut rec = SeriesRecorder::new(10);
        let mut firings = Vec::new();
        // Two quiet windows of 1 abort each, then a 20-abort burst.
        for (w, aborts) in [(1u64, 1u64), (2, 1), (3, 20)] {
            reg.add("update.aborted", aborts);
            firings.extend(rec.roll(w * 10, &mut reg).firings);
        }
        let spikes: Vec<_> = firings.iter().filter(|f| f.rule == "abort-spike").collect();
        assert_eq!(spikes.len(), 1, "{firings:?}");
        assert_eq!(spikes[0].window, 2);
    }

    #[test]
    fn watchdog_is_deterministic() {
        let run = || {
            let mut reg = Registry::new();
            let mut rec = SeriesRecorder::new(10);
            let mut all = Vec::new();
            for w in 1..=8u64 {
                reg.set_gauge("repl.queue.depth", (w as i64) * 50);
                reg.add("update.aborted", if w == 6 { 30 } else { 1 });
                reg.inc("tick");
                all.extend(rec.roll(w * 10, &mut reg).firings);
            }
            all
        };
        let a = run();
        assert_eq!(a, run());
        assert!(!a.is_empty());
    }

    #[test]
    fn sparkline_scales_to_peak() {
        assert_eq!(sparkline(&[0, 0, 0]), "▁▁▁");
        let s = sparkline(&[1, 4, 8]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut reg = reg_with(&[("a", 2)]);
        reg.set_gauge("g", -3);
        reg.observe("h", 9);
        let mut rec = SeriesRecorder::new(10);
        rec.roll(10, &mut reg);
        let snap = rec.snapshot(&reg);
        let json = serde_json::to_string(&snap).unwrap();
        let back: SeriesSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }
}
