//! The trace context piggybacked on every protocol message.
//!
//! A context names the *causal tree* a message belongs to (`trace_id`),
//! the span that caused the send (`parent_span`), and a Lamport clock so
//! cross-site span orderings are reconstructible even under the live
//! transports, where wall clocks are not comparable across threads.

use serde::{Deserialize, Serialize};

/// Causal metadata carried by one protocol message.
///
/// Minted at update submission, merged into the receiver's logical clock
/// on delivery, and re-attached (with a new parent span) to every message
/// the receiver sends on behalf of the same trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TraceContext {
    /// The causal tree this message belongs to. Update traces reuse the
    /// raw transaction id (`TxnId.0`), which is unique per run and
    /// survives persistence; auxiliary traces set [`AUX_TRACE_FLAG`].
    pub trace_id: u64,
    /// Span id of the operation that caused this send (`0` = root).
    pub parent_span: u64,
    /// Lamport clock at the sender when the message was handed over.
    pub clock: u64,
}

impl TraceContext {
    /// A context rooted at `trace_id` with no parent span.
    pub fn root(trace_id: u64, clock: u64) -> Self {
        TraceContext { trace_id, parent_span: 0, clock }
    }

    /// A context for a message sent on behalf of `parent_span`.
    pub fn child(trace_id: u64, parent_span: u64, clock: u64) -> Self {
        TraceContext { trace_id, parent_span, clock }
    }
}

/// High bit marking auxiliary traces — replication batches and autonomous
/// AV pushes, which have no originating transaction. Transaction ids
/// never set this bit (site ids are 32-bit, sequence numbers 40-bit), so
/// auxiliary trace ids can never collide with update trace ids.
pub const AUX_TRACE_FLAG: u64 = 1 << 63;

/// Bits reserved for the per-site sequence number in ids minted by one
/// site — the same split `TxnId` uses.
pub const SEQ_BITS: u32 = 40;

/// Trace id for a site-local auxiliary root (replication flush, AV push):
/// `AUX_TRACE_FLAG | site << 40 | seq`.
pub fn aux_trace_id(site: u32, seq: u64) -> u64 {
    AUX_TRACE_FLAG | ((site as u64) << SEQ_BITS) | (seq & ((1 << SEQ_BITS) - 1))
}

/// `true` when `trace_id` names an auxiliary trace rather than an update.
pub fn is_aux_trace(trace_id: u64) -> bool {
    trace_id & AUX_TRACE_FLAG != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aux_ids_never_collide_with_txn_ids() {
        let txn_like = (3u64 << SEQ_BITS) | 17;
        let aux = aux_trace_id(3, 17);
        assert_ne!(txn_like, aux);
        assert!(is_aux_trace(aux));
        assert!(!is_aux_trace(txn_like));
    }

    #[test]
    fn context_roundtrips_through_json() {
        let ctx = TraceContext::child(42, 7, 99);
        let json = serde_json::to_string(&ctx).unwrap();
        let back: TraceContext = serde_json::from_str(&json).unwrap();
        assert_eq!(ctx, back);
    }

    #[test]
    fn root_has_no_parent() {
        let ctx = TraceContext::root(5, 1);
        assert_eq!(ctx.parent_span, 0);
    }
}
