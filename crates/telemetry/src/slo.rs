//! Per-lane SLO engine: declarative targets, error-budget accounting,
//! and a red/amber/green evaluation over a registry snapshot.
//!
//! The paper's two consistency lanes — **Immediate** updates (2PC,
//! strongly consistent) and **Delay** updates (escrow AV negotiation,
//! autonomous) — have different latency and freshness contracts, so each
//! lane carries its own [`LaneSlo`]: a commit-latency target in virtual
//! ticks, a replication-staleness ceiling (fed by the PR 4 staleness
//! gauges), a shortage-rate ceiling in per-mille, and an error budget.
//!
//! The accelerator feeds `slo.<lane>.total` / `slo.<lane>.breach.latency`
//! counters and a `slo.<lane>.latency.ticks` histogram at outcome time;
//! [`evaluate`] turns a (possibly cluster-merged) snapshot into a
//! [`SloReport`]: per-lane health plus the numbers behind it. Health is
//! the worst of the lane's gates — RED once the burn rate exceeds the
//! budget (or a ceiling is pierced), AMBER from 75% of budget, GREEN
//! otherwise. All arithmetic is integer per-mille, so a seeded run's
//! report is deterministic.

use crate::registry::RegistrySnapshot;
use serde::{Deserialize, Serialize};

/// Immediate-lane name used in registry keys (`slo.imm.*`).
pub const LANE_IMM: &str = "imm";
/// Delay-lane name used in registry keys (`slo.delay.*`).
pub const LANE_DELAY: &str = "delay";

/// Declarative targets for one lane. A zero target disables that gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneSlo {
    /// Commit-latency target in ticks: a committed update slower than
    /// this burns error budget.
    pub commit_p99_ticks: u64,
    /// Ceiling on the lane's replication staleness gauge (ticks).
    pub staleness_ceiling_ticks: u64,
    /// Ceiling on the shortage rate (shortage-path updates ‰ of lane
    /// outcomes). Only meaningful for the Delay lane.
    pub shortage_rate_permille: u64,
    /// Error budget: the fraction of outcomes (‰) allowed to breach the
    /// latency target before the lane goes RED.
    pub error_budget_permille: u64,
}

/// Per-lane targets for the whole system.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Targets for Immediate (2PC) updates.
    pub immediate: LaneSlo,
    /// Targets for Delay (escrow) updates.
    pub delay: LaneSlo,
}

impl Default for SloSpec {
    /// Generous defaults calibrated to the seeded sim workloads: healthy
    /// runs are GREEN, deliberately slowed ones trip AMBER/RED.
    fn default() -> Self {
        SloSpec {
            immediate: LaneSlo {
                commit_p99_ticks: 128,
                staleness_ceiling_ticks: 0,
                shortage_rate_permille: 0,
                error_budget_permille: 50,
            },
            delay: LaneSlo {
                commit_p99_ticks: 128,
                staleness_ceiling_ticks: 50_000,
                shortage_rate_permille: 600,
                error_budget_permille: 50,
            },
        }
    }
}

impl SloSpec {
    /// The lane's targets by registry lane name.
    pub fn lane(&self, name: &str) -> &LaneSlo {
        if name == LANE_IMM {
            &self.immediate
        } else {
            &self.delay
        }
    }
}

/// Traffic-light health of a lane (or the whole system).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SloHealth {
    /// Inside budget.
    Green,
    /// ≥ 75% of the error budget burned, or within 75% of a ceiling.
    Amber,
    /// Budget exhausted or a ceiling pierced.
    Red,
}

impl SloHealth {
    /// Uppercase label for panels.
    pub fn label(&self) -> &'static str {
        match self {
            SloHealth::Green => "GREEN",
            SloHealth::Amber => "AMBER",
            SloHealth::Red => "RED",
        }
    }
}

/// One lane's evaluated state.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaneReport {
    /// Lane name (`"imm"` / `"delay"`).
    pub lane: String,
    /// Worst gate verdict.
    pub health: SloHealth,
    /// Outcomes seen on the lane.
    pub total: u64,
    /// Outcomes that breached the latency target.
    pub breaches: u64,
    /// Breach rate in ‰ of outcomes.
    pub burn_permille: u64,
    /// The lane's error budget in ‰.
    pub budget_permille: u64,
    /// Measured commit-latency p99 (ticks).
    pub latency_p99_ticks: u64,
    /// The latency target (ticks, 0 = disabled).
    pub latency_target_ticks: u64,
    /// Current worst staleness gauge (ticks).
    pub staleness_ticks: u64,
    /// The staleness ceiling (ticks, 0 = disabled).
    pub staleness_ceiling_ticks: u64,
    /// Shortage-path updates ‰ of lane outcomes.
    pub shortage_permille: u64,
    /// The shortage ceiling (‰, 0 = disabled).
    pub shortage_target_permille: u64,
    /// One human-readable line per tripped gate.
    pub details: Vec<String>,
}

/// The full SLO evaluation of one snapshot.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloReport {
    /// Per-lane verdicts, Immediate first.
    pub lanes: Vec<LaneReport>,
    /// Worst lane health.
    pub overall: SloHealth,
}

/// Health of one `measured / ceiling` gate (0 ceiling = disabled).
fn gate(measured: u64, ceiling: u64) -> SloHealth {
    if ceiling == 0 {
        SloHealth::Green
    } else if measured > ceiling {
        SloHealth::Red
    } else if measured.saturating_mul(4) >= ceiling.saturating_mul(3) {
        SloHealth::Amber
    } else {
        SloHealth::Green
    }
}

fn evaluate_lane(lane: &str, slo: &LaneSlo, snap: &RegistrySnapshot) -> LaneReport {
    let total = snap.counter(&format!("slo.{lane}.total"));
    let breaches = snap.counter(&format!("slo.{lane}.breach.latency"));
    let burn_permille = breaches.saturating_mul(1000).checked_div(total).unwrap_or(0);
    let latency_p99_ticks = snap
        .histograms
        .get(&format!("slo.{lane}.latency.ticks"))
        .map(|h| h.percentile(0.99))
        .unwrap_or(0);
    // Staleness gauges are per-peer (`knowledge.staleness.s<N>`); the
    // lane answers for the worst one.
    let staleness_ticks = snap
        .gauges
        .iter()
        .filter(|(k, _)| k.starts_with("knowledge.staleness."))
        .map(|(_, v)| (*v).max(0) as u64)
        .max()
        .unwrap_or(0);
    let shortage = snap.counter(&format!("slo.{lane}.shortage"));
    let shortage_permille = shortage.saturating_mul(1000).checked_div(total).unwrap_or(0);

    let mut details = Vec::new();
    let budget = gate(burn_permille, slo.error_budget_permille);
    if budget != SloHealth::Green {
        details.push(format!(
            "latency budget: {breaches}/{total} outcomes over {} ticks \
             ({burn_permille}‰ of {}‰ budget)",
            slo.commit_p99_ticks, slo.error_budget_permille
        ));
    }
    let staleness = if lane == LANE_DELAY {
        let g = gate(staleness_ticks, slo.staleness_ceiling_ticks);
        if g != SloHealth::Green {
            details.push(format!(
                "staleness {staleness_ticks} ticks vs ceiling {}",
                slo.staleness_ceiling_ticks
            ));
        }
        g
    } else {
        SloHealth::Green
    };
    let shortage_gate = gate(shortage_permille, slo.shortage_rate_permille);
    if shortage_gate != SloHealth::Green {
        details.push(format!(
            "shortage rate {shortage_permille}‰ vs ceiling {}‰",
            slo.shortage_rate_permille
        ));
    }

    LaneReport {
        lane: lane.to_string(),
        health: budget.max(staleness).max(shortage_gate),
        total,
        breaches,
        burn_permille,
        budget_permille: slo.error_budget_permille,
        latency_p99_ticks,
        latency_target_ticks: slo.commit_p99_ticks,
        staleness_ticks,
        staleness_ceiling_ticks: slo.staleness_ceiling_ticks,
        shortage_permille,
        shortage_target_permille: slo.shortage_rate_permille,
        details,
    }
}

/// Evaluates `spec` against a registry snapshot (one site's, or a
/// cluster-wide merge).
pub fn evaluate(spec: &SloSpec, snap: &RegistrySnapshot) -> SloReport {
    let lanes = vec![
        evaluate_lane(LANE_IMM, &spec.immediate, snap),
        evaluate_lane(LANE_DELAY, &spec.delay, snap),
    ];
    let overall = lanes.iter().map(|l| l.health).max().unwrap_or(SloHealth::Green);
    SloReport { lanes, overall }
}

impl SloReport {
    /// Plain-text panel, one line per lane.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for lane in &self.lanes {
            let _ = writeln!(
                out,
                "  [{:<5}] {:<5} n={:<6} p99={}t (target {}t)  burn={}‰/{}‰  \
                 shortage={}‰  staleness={}t",
                lane.health.label(),
                lane.lane,
                lane.total,
                lane.latency_p99_ticks,
                lane.latency_target_ticks,
                lane.burn_permille,
                lane.budget_permille,
                lane.shortage_permille,
                lane.staleness_ticks,
            );
            for d in &lane.details {
                let _ = writeln!(out, "          {d}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn feed(reg: &mut Registry, lane: &str, latencies: &[u64], target: u64) {
        for &l in latencies {
            reg.inc(&format!("slo.{lane}.total"));
            reg.observe(&format!("slo.{lane}.latency.ticks"), l);
            if l > target {
                reg.inc(&format!("slo.{lane}.breach.latency"));
            }
        }
    }

    #[test]
    fn healthy_lanes_are_green() {
        let mut reg = Registry::new();
        feed(&mut reg, "imm", &[3, 4, 5, 6], 128);
        feed(&mut reg, "delay", &[8, 9], 128);
        let report = evaluate(&SloSpec::default(), &reg.snapshot());
        assert_eq!(report.overall, SloHealth::Green);
        assert_eq!(report.lanes[0].lane, "imm");
        assert_eq!(report.lanes[0].total, 4);
        assert!(report.lanes.iter().all(|l| l.details.is_empty()));
    }

    #[test]
    fn burned_budget_goes_red() {
        let mut reg = Registry::new();
        // 2 of 10 outcomes breach: 200‰ burn against a 50‰ budget.
        feed(&mut reg, "imm", &[3, 3, 3, 3, 3, 3, 3, 3, 200, 300], 128);
        let report = evaluate(&SloSpec::default(), &reg.snapshot());
        assert_eq!(report.lanes[0].health, SloHealth::Red);
        assert_eq!(report.lanes[0].breaches, 2);
        assert_eq!(report.lanes[0].burn_permille, 200);
        assert!(!report.lanes[0].details.is_empty());
        assert_eq!(report.overall, SloHealth::Red);
    }

    #[test]
    fn amber_at_three_quarters_of_budget() {
        let spec = SloSpec::default(); // 50‰ budget
        let mut reg = Registry::new();
        // 1 breach in 25 = 40‰: ≥ 75% of 50‰ ⇒ amber, not red.
        let mut lat = vec![3u64; 24];
        lat.push(200);
        feed(&mut reg, "delay", &lat, 128);
        let report = evaluate(&spec, &reg.snapshot());
        assert_eq!(report.lanes[1].health, SloHealth::Amber);
    }

    #[test]
    fn staleness_ceiling_is_delay_only() {
        let mut reg = Registry::new();
        feed(&mut reg, "imm", &[3], 128);
        feed(&mut reg, "delay", &[3], 128);
        reg.set_gauge("knowledge.staleness.s1", 80_000);
        let report = evaluate(&SloSpec::default(), &reg.snapshot());
        assert_eq!(report.lanes[0].health, SloHealth::Green);
        assert_eq!(report.lanes[1].health, SloHealth::Red);
        assert_eq!(report.lanes[1].staleness_ticks, 80_000);
    }

    #[test]
    fn shortage_rate_gate() {
        let mut spec = SloSpec::default();
        spec.delay.shortage_rate_permille = 100;
        let mut reg = Registry::new();
        feed(&mut reg, "delay", &[3; 10], 128);
        reg.add("slo.delay.shortage", 2); // 200‰
        let report = evaluate(&spec, &reg.snapshot());
        assert_eq!(report.lanes[1].health, SloHealth::Red);
        assert_eq!(report.lanes[1].shortage_permille, 200);
    }

    #[test]
    fn empty_snapshot_is_green_and_report_roundtrips() {
        let report = evaluate(&SloSpec::default(), &RegistrySnapshot::default());
        assert_eq!(report.overall, SloHealth::Green);
        let json = serde_json::to_string(&report).unwrap();
        let back: SloReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert!(report.render().contains("GREEN"));
    }
}
