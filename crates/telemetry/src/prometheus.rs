//! Prometheus text-format exposition rendered straight from a
//! [`RegistrySnapshot`](crate::RegistrySnapshot).
//!
//! The registry's dotted names (`update.committed`, `repl.queue.depth`)
//! become valid Prometheus metric names by replacing every character
//! outside `[a-zA-Z0-9_:]` with `_` and prefixing `avdb_`; counters
//! additionally get the conventional `_total` suffix. Log₂ histograms map
//! onto cumulative `le`-bucketed series: ring bucket `0` holds exact zeros
//! (`le="0"`), bucket `i ≥ 1` holds values in `[2^(i-1), 2^i)` so its
//! inclusive upper bound is `2^i − 1`.
//!
//! A small line-level validator and family extractor live here too so the
//! CI metrics-smoke job and `avdb top --check` can verify an endpoint's
//! output without a real Prometheus server.

use crate::registry::RegistrySnapshot;
use crate::timeseries::SeriesSnapshot;
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Converts a registry metric name into a valid Prometheus metric name:
/// `avdb_` prefix plus the dotted name with every character outside
/// `[a-zA-Z0-9_:]` replaced by `_`.
pub fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 5);
    out.push_str("avdb_");
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn label_block(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let escaped: String = v.chars().flat_map(|c| match c {
            '\\' => vec!['\\', '\\'],
            '"' => vec!['\\', '"'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        }).collect();
        let _ = write!(out, "{k}=\"{escaped}\"");
    }
    out.push('}');
    out
}

fn label_block_with(labels: &[(&str, String)], extra_key: &str, extra_val: &str) -> String {
    let mut all: Vec<(&str, String)> = labels.to_vec();
    all.push((extra_key, extra_val.to_string()));
    label_block(&all)
}

/// Inclusive upper bound of log₂ ring bucket `i` (see module docs).
fn bucket_upper(i: u32) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Renders `snap` in the Prometheus text exposition format (version
/// 0.0.4). `labels` are attached to every sample — pass `("site", ..)` so
/// scrapes from different sites stay distinguishable after aggregation.
pub fn render_prometheus(snap: &RegistrySnapshot, labels: &[(&str, String)]) -> String {
    let mut out = String::new();
    let lbl = label_block(labels);
    for (name, value) in &snap.counters {
        let pname = format!("{}_total", metric_name(name));
        let _ = writeln!(out, "# TYPE {pname} counter");
        let _ = writeln!(out, "{pname}{lbl} {value}");
    }
    for (name, value) in &snap.gauges {
        let pname = metric_name(name);
        let _ = writeln!(out, "# TYPE {pname} gauge");
        let _ = writeln!(out, "{pname}{lbl} {value}");
    }
    for (name, hist) in &snap.histograms {
        let pname = metric_name(name);
        let _ = writeln!(out, "# TYPE {pname} histogram");
        let mut cumulative = 0u64;
        for &(bucket, count) in &hist.buckets {
            cumulative += count;
            let le = label_block_with(labels, "le", &bucket_upper(bucket).to_string());
            let _ = writeln!(out, "{pname}_bucket{le} {cumulative}");
        }
        let inf = label_block_with(labels, "le", "+Inf");
        let _ = writeln!(out, "{pname}_bucket{inf} {}", hist.count);
        let _ = writeln!(out, "{pname}_sum{lbl} {}", hist.sum);
        let _ = writeln!(out, "{pname}_count{lbl} {}", hist.count);
    }
    out
}

/// Renders the most recent time-series window as a handful of
/// window-aggregated families, meant to be appended to the output of
/// [`render_prometheus`]. The per-metric dimension is folded into a
/// `metric` label instead of minting one family per registry key, so the
/// family count stays fixed no matter how many metrics exist and the
/// combined exposition keeps every `# TYPE` unique (the
/// [`validate_exposition`] duplicate-family rule). Ordering is stable:
/// window metadata first, then counter deltas, gauge values, and
/// histogram deltas, each in `BTreeMap` name order.
pub fn render_series_prometheus(series: &SeriesSnapshot, labels: &[(&str, String)]) -> String {
    let mut out = String::new();
    let Some(window) = series.latest() else {
        return out;
    };
    let lbl = label_block(labels);
    let _ = writeln!(out, "# TYPE avdb_series_window gauge");
    let _ = writeln!(out, "avdb_series_window{lbl} {}", window.index);
    let _ = writeln!(out, "# TYPE avdb_series_window_start gauge");
    let _ = writeln!(out, "avdb_series_window_start{lbl} {}", window.start);
    let _ = writeln!(out, "# TYPE avdb_series_window_width_ticks gauge");
    let _ = writeln!(out, "avdb_series_window_width_ticks{lbl} {}", series.window_ticks);
    if !window.counters.is_empty() {
        let _ = writeln!(out, "# TYPE avdb_series_counter_delta gauge");
        for (name, delta) in &window.counters {
            let l = label_block_with(labels, "metric", name);
            let _ = writeln!(out, "avdb_series_counter_delta{l} {delta}");
        }
    }
    if !window.gauges.is_empty() {
        let _ = writeln!(out, "# TYPE avdb_series_gauge_value gauge");
        for (name, value) in &window.gauges {
            let l = label_block_with(labels, "metric", name);
            let _ = writeln!(out, "avdb_series_gauge_value{l} {value}");
        }
    }
    if !window.histograms.is_empty() {
        let _ = writeln!(out, "# TYPE avdb_series_histogram_delta_count gauge");
        for (name, hist) in &window.histograms {
            let l = label_block_with(labels, "metric", name);
            let _ = writeln!(out, "avdb_series_histogram_delta_count{l} {}", hist.count);
        }
        let _ = writeln!(out, "# TYPE avdb_series_histogram_delta_sum gauge");
        for (name, hist) in &window.histograms {
            let l = label_block_with(labels, "metric", name);
            let _ = writeln!(out, "avdb_series_histogram_delta_sum{l} {}", hist.sum);
        }
    }
    out
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// One sample line: `name[{labels}] value [timestamp]`. The label block
/// is scanned honouring quoted values and backslash escapes — splitting
/// on the last space (the old implementation) mis-parses any label value
/// that legally contains a space.
fn parse_sample_line(line: &str) -> Result<(), String> {
    let name_end = line.find(['{', ' ']).unwrap_or(line.len());
    let name = &line[..name_end];
    if !valid_name(name) {
        return Err(format!("invalid metric name {name:?} in line {line:?}"));
    }
    let mut rest = &line[name_end..];
    if let Some(stripped) = rest.strip_prefix('{') {
        let bytes = stripped.as_bytes();
        let mut in_quotes = false;
        let mut escaped = false;
        let mut closed = None;
        for (i, &b) in bytes.iter().enumerate() {
            if in_quotes {
                if escaped {
                    escaped = false;
                } else if b == b'\\' {
                    escaped = true;
                } else if b == b'"' {
                    in_quotes = false;
                }
            } else if b == b'"' {
                in_quotes = true;
            } else if b == b'}' {
                closed = Some(i);
                break;
            }
        }
        let Some(end) = closed else {
            return Err(format!("unterminated label block: {line:?}"));
        };
        rest = &stripped[end + 1..];
    }
    let mut tokens = rest.split_whitespace();
    let Some(value) = tokens.next() else {
        return Err(format!("no value separator: {line:?}"));
    };
    if value.parse::<f64>().is_err() {
        return Err(format!("non-numeric value {value:?} in line {line:?}"));
    }
    if let Some(ts) = tokens.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("non-integer timestamp {ts:?} in line {line:?}"));
        }
    }
    if tokens.next().is_some() {
        return Err(format!("trailing tokens in line {line:?}"));
    }
    Ok(())
}

/// Validates that `text` parses as Prometheus text exposition: every
/// non-comment line is `name[{labels}] value [timestamp]` with a
/// well-formed metric name, quoted-and-escaped label values, and a
/// numeric value — and no metric family is declared twice (a duplicate
/// `# TYPE` makes real scrapers reject the whole page). Returns the
/// first offending line on failure.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut families = BTreeSet::new();
    for line in text.lines() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split_whitespace().next().unwrap_or("");
            if !families.insert(family.to_string()) {
                return Err(format!("duplicate metric family {family:?}"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        parse_sample_line(line)?;
    }
    Ok(())
}

/// Extracts the set of metric family names present in an exposition,
/// stripping histogram `_bucket`/`_sum`/`_count` suffixes down to the
/// family declared by the `# TYPE` line.
pub fn metric_families(text: &str) -> BTreeSet<String> {
    text.lines()
        .filter_map(|line| {
            let rest = line.strip_prefix("# TYPE ")?;
            Some(rest.split_whitespace().next()?.to_string())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> RegistrySnapshot {
        let mut r = Registry::new();
        r.inc("update.committed");
        r.inc("update.committed");
        r.set_gauge("repl.queue.depth", 3);
        r.observe("update.latency.ticks", 0);
        r.observe("update.latency.ticks", 1);
        r.observe("update.latency.ticks", 5);
        r.snapshot()
    }

    #[test]
    fn renders_counters_gauges_histograms() {
        let text = render_prometheus(&sample(), &[("site", "0".to_string())]);
        assert!(text.contains("# TYPE avdb_update_committed_total counter"));
        assert!(text.contains("avdb_update_committed_total{site=\"0\"} 2"));
        assert!(text.contains("avdb_repl_queue_depth{site=\"0\"} 3"));
        assert!(text.contains("# TYPE avdb_update_latency_ticks histogram"));
        // Zeros land in le="0"; 1 in le="1"; 5 in le="7".
        assert!(text.contains("avdb_update_latency_ticks_bucket{site=\"0\",le=\"0\"} 1"));
        assert!(text.contains("avdb_update_latency_ticks_bucket{site=\"0\",le=\"1\"} 2"));
        assert!(text.contains("avdb_update_latency_ticks_bucket{site=\"0\",le=\"7\"} 3"));
        assert!(text.contains("avdb_update_latency_ticks_bucket{site=\"0\",le=\"+Inf\"} 3"));
        assert!(text.contains("avdb_update_latency_ticks_sum{site=\"0\"} 6"));
        assert!(text.contains("avdb_update_latency_ticks_count{site=\"0\"} 3"));
    }

    #[test]
    fn rendered_text_validates_and_lists_families() {
        let text = render_prometheus(&sample(), &[("site", "1".to_string())]);
        validate_exposition(&text).unwrap();
        let fams = metric_families(&text);
        assert!(fams.contains("avdb_update_committed_total"));
        assert!(fams.contains("avdb_repl_queue_depth"));
        assert!(fams.contains("avdb_update_latency_ticks"));
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_exposition("not a metric line").is_err());
        assert!(validate_exposition("9bad_name 1").is_err());
        assert!(validate_exposition("name{unclosed 1").is_err());
        assert!(validate_exposition("ok_name 1\n").is_ok());
        assert!(validate_exposition("ok_name 1 notatimestamp").is_err());
        assert!(validate_exposition("ok_name 1 123").is_ok());
    }

    #[test]
    fn validator_accepts_label_values_with_spaces_and_escapes() {
        // A space inside a quoted label value is legal exposition; the
        // old rsplit-on-space parser split inside the quotes.
        validate_exposition("m{site=\"a b\"} 1").unwrap();
        validate_exposition("m{k=\"say \\\"hi\\\" now\"} 2").unwrap();
        validate_exposition("m{k=\"back\\\\slash\",l=\"x\"} 3").unwrap();
        // A quoted `}` must not terminate the block early.
        validate_exposition("m{k=\"a}b\"} 4").unwrap();
        assert!(validate_exposition("m{k=\"unterminated} 1").is_err());
    }

    #[test]
    fn validator_rejects_duplicate_families() {
        let dup = "# TYPE avdb_x counter\navdb_x 1\n# TYPE avdb_x counter\navdb_x 2\n";
        let err = validate_exposition(dup).unwrap_err();
        assert!(err.contains("duplicate metric family"), "{err}");
        let ok = "# TYPE avdb_x counter\navdb_x 1\n# TYPE avdb_y counter\navdb_y 2\n";
        validate_exposition(ok).unwrap();
    }

    #[test]
    fn escaped_label_values_render_and_validate() {
        let snap = sample();
        let text = render_prometheus(
            &snap,
            &[("host", "rack \"a\" \\ b\nline2".to_string()), ("site", "0".to_string())],
        );
        // Escaping per the exposition spec: \\ for backslash, \" for
        // quote, \n for newline — and the result must still validate.
        assert!(text.contains(r#"host="rack \"a\" \\ b\nline2""#), "{text}");
        validate_exposition(&text).unwrap();
    }

    #[test]
    fn series_families_render_append_and_validate() {
        // A registry that includes a `series.*`-named counter must not
        // collide with the window-aggregated families.
        let mut r = Registry::new();
        r.inc("update.committed");
        r.inc("series.watchdog.fired");
        r.set_gauge("repl.queue.depth", 3);
        r.observe("update.latency.ticks", 5);
        let mut rec = crate::SeriesRecorder::new(10);
        rec.roll(10, &mut r);
        r.add("update.committed", 4);
        r.set_gauge("repl.queue.depth", 7);
        rec.roll(20, &mut r);

        let labels = [("site", "2".to_string())];
        let mut text = render_prometheus(&r.snapshot(), &labels);
        let series = rec.snapshot(&r);
        text.push_str(&render_series_prometheus(&series, &labels));

        validate_exposition(&text).unwrap();
        let fams = metric_families(&text);
        assert!(fams.contains("avdb_series_window"));
        assert!(fams.contains("avdb_series_counter_delta"));
        assert!(fams.contains("avdb_series_gauge_value"));
        assert!(fams.contains("avdb_series_watchdog_fired_total"));
        // Latest-window values, not totals.
        assert!(
            text.contains(
                "avdb_series_counter_delta{site=\"2\",metric=\"update.committed\"} 4"
            ),
            "{text}"
        );
        assert!(text
            .contains("avdb_series_gauge_value{site=\"2\",metric=\"repl.queue.depth\"} 7"));
        assert!(text.contains("avdb_series_window{site=\"2\"} 1"));

        // Stable ordering: byte-identical on re-render.
        let again = render_series_prometheus(&series, &labels);
        assert_eq!(again, render_series_prometheus(&rec.snapshot(&r), &labels));

        // An empty series renders nothing (and so stays valid appended).
        let empty = crate::SeriesRecorder::new(10);
        assert!(render_series_prometheus(&empty.snapshot(&r), &labels).is_empty());
    }

    #[test]
    fn sanitizes_dotted_names() {
        assert_eq!(metric_name("repl.queue.depth"), "avdb_repl_queue_depth");
        assert_eq!(metric_name("msg.sent.av-req"), "avdb_msg_sent_av_req");
    }

    #[test]
    fn bucket_bounds_match_log2_ring() {
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(3), 7);
        assert_eq!(bucket_upper(64), u64::MAX);
    }
}
