//! Flight recorder: a fixed-size ring buffer of recent protocol events.
//!
//! Every site keeps one of these always on. Recording is cheap (a bounded
//! `VecDeque` push), so the ring can run in the hot path of a bench without
//! skewing results; it only becomes visible when something goes wrong — an
//! oracle invariant fires, a WAL recovery runs, or a 2PC round aborts — at
//! which point the last `capacity` events from every site are assembled
//! into a [`FlightDump`], written to disk as JSON, and pretty-printed by
//! `avdb-trace flight`.
//!
//! Events are stamped with the site's virtual time and Lamport clock, so a
//! dump from a deterministic sim run is itself deterministic and two dumps
//! from the same seed are byte-identical.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Default ring capacity per site: enough to cover several protocol rounds
/// without the dump becoming unreadable.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// One recorded protocol event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotone per-site sequence number (never wraps; survives eviction,
    /// so gaps at the front of a dump reveal how much history was lost).
    pub seq: u64,
    /// Virtual-time ticks when the event was recorded.
    pub at: u64,
    /// The site's Lamport clock at recording time.
    pub clock: u64,
    /// Short event class, e.g. `"delay.commit"` or `"imm.abort"`.
    pub kind: String,
    /// Human-readable detail line (txn ids, products, volumes, peers).
    pub detail: String,
}

/// A bounded ring of [`FlightEvent`]s. Oldest events are evicted first.
#[derive(Clone, Debug)]
pub struct FlightRecorder {
    cap: usize,
    next_seq: u64,
    events: VecDeque<FlightEvent>,
}

impl FlightRecorder {
    /// A recorder holding at most `cap` events (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        FlightRecorder { cap, next_seq: 0, events: VecDeque::with_capacity(cap) }
    }

    /// Appends an event, evicting the oldest if the ring is full.
    pub fn record(&mut self, at: u64, clock: u64, kind: &str, detail: String) {
        if self.events.len() == self.cap {
            self.events.pop_front();
        }
        self.events.push_back(FlightEvent {
            seq: self.next_seq,
            at,
            clock,
            kind: kind.to_string(),
            detail,
        });
        self.next_seq += 1;
    }

    /// [`FlightRecorder::record`] formatting `args` into the evicted
    /// event's buffers, so a saturated ring records with zero fresh
    /// allocations — for call sites that fire per frame or per delta.
    pub fn record_args(&mut self, at: u64, clock: u64, kind: &str, args: std::fmt::Arguments<'_>) {
        use std::fmt::Write as _;
        let (mut kind_buf, mut detail) = if self.events.len() == self.cap {
            let old = self.events.pop_front().expect("cap >= 1");
            (old.kind, old.detail)
        } else {
            (String::new(), String::new())
        };
        kind_buf.clear();
        kind_buf.push_str(kind);
        detail.clear();
        let _ = detail.write_fmt(args);
        self.events.push_back(FlightEvent { seq: self.next_seq, at, clock, kind: kind_buf, detail });
        self.next_seq += 1;
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever recorded (retained + evicted).
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.events.iter()
    }

    /// Clones the retained events out, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.events.iter().cloned().collect()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(DEFAULT_FLIGHT_CAPACITY)
    }
}

/// One site's slice of a [`FlightDump`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteFlight {
    /// Site id.
    pub site: u32,
    /// Retained events, oldest first.
    pub events: Vec<FlightEvent>,
}

/// A cluster-wide flight-recorder dump: why it was taken plus every site's
/// recent events. Serialized as pretty JSON so a dump is diffable and
/// greppable without tooling; `avdb-trace flight` renders it as a merged
/// timeline.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightDump {
    /// What triggered the dump (oracle violation, WAL recovery, 2PC abort).
    pub reason: String,
    /// Virtual-time ticks when the dump was taken (0 if unknown).
    pub at: u64,
    /// Per-site event rings.
    pub sites: Vec<SiteFlight>,
}

impl FlightDump {
    /// An empty dump with the given reason and timestamp.
    pub fn new(reason: impl Into<String>, at: u64) -> Self {
        FlightDump { reason: reason.into(), at, sites: Vec::new() }
    }

    /// Appends one site's recorder contents.
    pub fn push_site(&mut self, site: u32, recorder: &FlightRecorder) {
        self.sites.push(SiteFlight { site, events: recorder.snapshot() });
    }

    /// Serializes the dump as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("flight dump serializes")
    }

    /// Parses a dump previously written by [`FlightDump::to_json`].
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("invalid flight dump: {e}"))
    }

    /// Total events across all sites.
    pub fn total_events(&self) -> usize {
        self.sites.iter().map(|s| s.events.len()).sum()
    }

    /// Renders a human-readable report: header, then one merged timeline
    /// of every site's events ordered by (virtual time, site, seq).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "flight recorder dump — {}", self.reason);
        let _ = writeln!(out, "taken at t={} · {} site(s) · {} event(s)", self.at, self.sites.len(), self.total_events());
        for sf in &self.sites {
            let evicted = sf.events.first().map(|e| e.seq).unwrap_or(0);
            let _ = writeln!(
                out,
                "  site {}: {} event(s) retained, {} evicted",
                sf.site,
                sf.events.len(),
                evicted
            );
        }
        let mut merged: Vec<(&SiteFlight, &FlightEvent)> = self
            .sites
            .iter()
            .flat_map(|sf| sf.events.iter().map(move |e| (sf, e)))
            .collect();
        merged.sort_by_key(|(sf, e)| (e.at, sf.site, e.seq));
        let _ = writeln!(out);
        let _ = writeln!(out, "{:>8}  {:>6}  {:>6}  {:<24} detail", "t", "site", "clock", "kind");
        for (sf, e) in merged {
            let _ = writeln!(out, "{:>8}  {:>6}  {:>6}  {:<24} {}", e.at, sf.site, e.clock, e.kind, e.detail);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_keeps_seq() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5u64 {
            r.record(i, i, "tick", format!("event {i}"));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 5);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
    }

    #[test]
    fn multiple_wraps_retain_only_the_newest_window() {
        let mut r = FlightRecorder::new(3);
        for i in 0..10u64 {
            r.record(i, i, "tick", format!("event {i}"));
        }
        // Three full wraps: only the newest `cap` events survive, oldest
        // first, with their original (never-renumbered) sequence numbers.
        assert_eq!(r.len(), 3);
        assert_eq!(r.recorded(), 10);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        let details: Vec<&str> = r.events().map(|e| e.detail.as_str()).collect();
        assert_eq!(details, vec!["event 7", "event 8", "event 9"]);
    }

    #[test]
    fn mid_wrap_dump_is_byte_identical_across_identical_runs() {
        let run = || {
            let mut r = FlightRecorder::new(4);
            // 7 records into a 4-slot ring: the ring is mid-wrap (3 events
            // evicted, eviction pointer not at slot 0).
            for i in 0..7u64 {
                r.record(i * 3, i, "proto.step", format!("n{i}"));
            }
            let mut dump = FlightDump::new("mid-wrap", 21);
            dump.push_site(0, &r);
            dump
        };
        let a = run();
        let b = run();
        assert_eq!(a.to_json(), b.to_json(), "mid-wrap dumps diverge between identical runs");
        // The dump sees through the wrap: events come out oldest-first
        // with contiguous seqs, and the first seq tells how many were lost.
        let seqs: Vec<u64> = a.sites[0].events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5, 6]);
        assert!(a.render().contains("3 evicted"));
    }

    #[test]
    fn dump_ordering_is_stable_under_wrap() {
        // Two sites wrap different amounts; the merged timeline must stay
        // sorted by (time, site, seq) regardless of ring state.
        let mut a = FlightRecorder::new(2);
        for i in 0..5u64 {
            a.record(10 + i, i, "a.step", format!("a{i}"));
        }
        let mut b = FlightRecorder::new(8);
        b.record(11, 0, "b.step", "b0".into());
        let mut dump = FlightDump::new("wrap order", 99);
        dump.push_site(0, &a);
        dump.push_site(1, &b);
        let text = dump.render();
        let pos = |needle: &str| text.find(needle).unwrap_or_else(|| panic!("{needle} missing"));
        assert!(pos("b0") < pos("a3"), "t=11 event must precede t=13:\n{text}");
        assert!(pos("a3") < pos("a4"), "same-site events must stay seq-ordered:\n{text}");
    }

    #[test]
    fn dump_round_trips_and_renders() {
        let mut r = FlightRecorder::new(8);
        r.record(10, 1, "delay.commit", "txn 3 product 0 delta -2".into());
        r.record(12, 2, "imm.abort", "txn 4".into());
        let mut dump = FlightDump::new("test trigger", 20);
        dump.push_site(0, &r);
        dump.push_site(1, &FlightRecorder::new(4));
        let json = dump.to_json();
        let parsed = FlightDump::from_json(&json).unwrap();
        assert_eq!(parsed, dump);
        let text = parsed.render();
        assert!(text.contains("test trigger"));
        assert!(text.contains("imm.abort"));
        assert!(text.contains("txn 3 product 0 delta -2"));
    }

    #[test]
    fn render_merges_sites_by_time() {
        let mut a = FlightRecorder::new(4);
        a.record(5, 1, "a.late", "late".into());
        let mut b = FlightRecorder::new(4);
        b.record(2, 1, "b.early", "early".into());
        let mut dump = FlightDump::new("merge", 6);
        dump.push_site(0, &a);
        dump.push_site(1, &b);
        let text = dump.render();
        let early = text.find("b.early").unwrap();
        let late = text.find("a.late").unwrap();
        assert!(early < late, "events are merged in time order:\n{text}");
    }

    #[test]
    fn rejects_garbage_json() {
        assert!(FlightDump::from_json("{nope").is_err());
    }
}
