//! JSONL export of one run's telemetry.
//!
//! Each line is one externally-tagged [`ExportLine`]. The owned-`String`
//! line types mirror the in-memory records ([`crate::SpanRecord`],
//! [`crate::MessageEvent`]) so an export file round-trips through the
//! vendored serde without borrowing `&'static str` labels.

use crate::critical_path::PhaseProfile;
use crate::message_log::MessageEvent;
use crate::registry::RegistrySnapshot;
use crate::span::SpanRecord;
use crate::timeseries::{SeriesSnapshot, SeriesWindowSnapshot};
use serde::{Deserialize, Serialize};
use std::io::BufRead;

/// Run-level metadata (first line of an export).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetaLine {
    /// Transport that produced the run ("sim", "threads", "tcp").
    pub transport: String,
    /// Number of sites.
    pub sites: u64,
    /// Workload/system seed.
    pub seed: u64,
}

/// One span, with owned strings (see [`crate::SpanRecord`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanLine {
    /// Trace id.
    pub trace: u64,
    /// Span id.
    pub span: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    /// Recording site (raw id).
    pub site: u32,
    /// Phase name.
    pub name: String,
    /// Free-form detail.
    pub detail: String,
    /// Start tick.
    pub start: u64,
    /// End tick (`None` = never closed).
    pub end: Option<u64>,
    /// Lamport clock at open.
    pub clock: u64,
}

impl From<&SpanRecord> for SpanLine {
    fn from(r: &SpanRecord) -> Self {
        SpanLine {
            trace: r.trace,
            span: r.span,
            parent: r.parent,
            site: r.site.0,
            name: r.name.to_string(),
            detail: r.detail.clone(),
            start: r.start.ticks(),
            end: r.end.map(|e| e.ticks()),
            clock: r.clock,
        }
    }
}

/// One delivered message, with its piggybacked context flattened.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MessageLine {
    /// Delivery tick.
    pub at: u64,
    /// Sender (raw id).
    pub from: u32,
    /// Receiver (raw id).
    pub to: u32,
    /// Message kind.
    pub kind: String,
    /// Trace id, when a context was attached.
    pub trace: Option<u64>,
    /// Parent span id from the context.
    pub parent: Option<u64>,
    /// Sender's Lamport clock from the context.
    pub clock: Option<u64>,
}

impl From<&MessageEvent> for MessageLine {
    fn from(e: &MessageEvent) -> Self {
        MessageLine {
            at: e.at.ticks(),
            from: e.from.0,
            to: e.to.0,
            kind: e.kind.to_string(),
            trace: e.ctx.map(|c| c.trace_id),
            parent: e.ctx.map(|c| c.parent_span),
            clock: e.ctx.map(|c| c.clock),
        }
    }
}

/// One harness-visible update outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutcomeLine {
    /// Raw transaction id (== the update's trace id).
    pub txn: u64,
    /// Origin site (raw id).
    pub site: u32,
    /// `true` for a commit, `false` for an abort.
    pub committed: bool,
    /// Abort reason or empty.
    pub detail: String,
    /// Completion tick.
    pub at: u64,
    /// Correspondences charged to the update.
    pub correspondences: u64,
}

/// One registry snapshot, tagged with its scope.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegistryLine {
    /// `"site<N>"` for a per-site accelerator registry, `"network"` for
    /// the transport substrate.
    pub scope: String,
    /// The snapshot.
    pub snapshot: RegistrySnapshot,
}

/// One time-series window, tagged with its scope. Emitted one line per
/// window so the `series` scope streams: a consumer can fold windows as
/// they arrive without materializing the whole export.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SeriesLine {
    /// `"site<N>"` for a per-site accelerator series.
    pub scope: String,
    /// Window width in sim ticks (repeated per line so each line is
    /// self-contained).
    pub window_ticks: u64,
    /// The window.
    pub window: SeriesWindowSnapshot,
}

/// One line of a JSONL export.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExportLine {
    /// Run metadata.
    Meta(MetaLine),
    /// One span.
    Span(SpanLine),
    /// One delivered message.
    Message(MessageLine),
    /// One update outcome.
    Outcome(OutcomeLine),
    /// One registry snapshot.
    Registry(RegistryLine),
    /// One time-series window.
    Series(SeriesLine),
    /// The run's critical-path phase profile.
    Profile(PhaseProfile),
}

/// A parsed (or assembled) run export.
#[derive(Clone, Debug, Default)]
pub struct RunExport {
    /// Run metadata, when present.
    pub meta: Option<MetaLine>,
    /// All spans, all sites.
    pub spans: Vec<SpanLine>,
    /// All delivered messages.
    pub messages: Vec<MessageLine>,
    /// All update outcomes.
    pub outcomes: Vec<OutcomeLine>,
    /// All registry snapshots.
    pub registries: Vec<RegistryLine>,
    /// All time-series windows, one line per window.
    pub series: Vec<SeriesLine>,
    /// The run's critical-path phase profile, when one was computed.
    pub profile: Option<PhaseProfile>,
}

impl RunExport {
    /// Adds every record of one site's span collector.
    pub fn add_spans(&mut self, records: &[SpanRecord]) {
        self.spans.extend(records.iter().map(SpanLine::from));
    }

    /// Adds every event of a message log.
    pub fn add_messages(&mut self, events: &[MessageEvent]) {
        self.messages.extend(events.iter().map(MessageLine::from));
    }

    /// Adds one scoped registry snapshot.
    pub fn add_registry(&mut self, scope: &str, snapshot: RegistrySnapshot) {
        self.registries.push(RegistryLine { scope: scope.to_string(), snapshot });
    }

    /// The registry snapshot for one scope, when present.
    pub fn registry(&self, scope: &str) -> Option<&RegistrySnapshot> {
        self.registries.iter().find(|r| r.scope == scope).map(|r| &r.snapshot)
    }

    /// Adds one site's series snapshot, flattened to one line per window.
    pub fn add_series(&mut self, scope: &str, snapshot: &SeriesSnapshot) {
        for window in &snapshot.windows {
            self.series.push(SeriesLine {
                scope: scope.to_string(),
                window_ticks: snapshot.window_ticks,
                window: window.clone(),
            });
        }
    }

    /// Reassembles one scope's windows into a series snapshot (empty when
    /// the scope has no windows).
    pub fn series_for(&self, scope: &str) -> SeriesSnapshot {
        let mut snap = SeriesSnapshot::default();
        for line in self.series.iter().filter(|l| l.scope == scope) {
            snap.window_ticks = line.window_ticks;
            snap.windows.push(line.window.clone());
        }
        snap
    }

    /// All scopes that emitted series windows, first-seen order, deduped.
    pub fn series_scopes(&self) -> Vec<&str> {
        let mut scopes: Vec<&str> = Vec::new();
        for line in &self.series {
            if !scopes.contains(&line.scope.as_str()) {
                scopes.push(&line.scope);
            }
        }
        scopes
    }

    /// Serializes to JSONL: meta first, then spans, messages, outcomes,
    /// registries.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |line: &ExportLine| {
            out.push_str(&serde_json::to_string(line).expect("export lines serialize"));
            out.push('\n');
        };
        if let Some(meta) = &self.meta {
            push(&ExportLine::Meta(meta.clone()));
        }
        for s in &self.spans {
            push(&ExportLine::Span(s.clone()));
        }
        for m in &self.messages {
            push(&ExportLine::Message(m.clone()));
        }
        for o in &self.outcomes {
            push(&ExportLine::Outcome(o.clone()));
        }
        for r in &self.registries {
            push(&ExportLine::Registry(r.clone()));
        }
        for s in &self.series {
            push(&ExportLine::Series(s.clone()));
        }
        if let Some(p) = &self.profile {
            push(&ExportLine::Profile(p.clone()));
        }
        out
    }

    /// Folds one parsed line into the export.
    pub fn absorb(&mut self, line: ExportLine) {
        match line {
            ExportLine::Meta(m) => self.meta = Some(m),
            ExportLine::Span(s) => self.spans.push(s),
            ExportLine::Message(m) => self.messages.push(m),
            ExportLine::Outcome(o) => self.outcomes.push(o),
            ExportLine::Registry(r) => self.registries.push(r),
            ExportLine::Series(s) => self.series.push(s),
            ExportLine::Profile(p) => self.profile = Some(p),
        }
    }

    /// Parses a JSONL export held in memory. Returns the first malformed
    /// line as an error (`"line <n>: <parse error>"`).
    pub fn parse(text: &str) -> Result<RunExport, String> {
        Self::from_reader(text.as_bytes())
    }

    /// Parses a JSONL export incrementally from a buffered reader, one
    /// line at a time through a reused buffer — the analyzer's path for
    /// 10⁵-update exports, where slurping the file into a `String` first
    /// would double peak memory.
    pub fn from_reader<R: BufRead>(reader: R) -> Result<RunExport, String> {
        let mut export = RunExport::default();
        for_each_line(reader, |line| {
            export.absorb(line);
            Ok(())
        })?;
        Ok(export)
    }
}

/// Streams a JSONL export through `visit` without materializing it: each
/// parsed line is handed over and dropped. Consumers that only fold
/// (rate panels, series renderers, summaries) stay O(1) in the export
/// size. Stops at the first malformed line or visitor error.
pub fn for_each_line<R: BufRead>(
    mut reader: R,
    mut visit: impl FnMut(ExportLine) -> Result<(), String>,
) -> Result<(), String> {
    let mut buf = String::new();
    let mut n = 0usize;
    loop {
        buf.clear();
        let read = reader
            .read_line(&mut buf)
            .map_err(|e| format!("line {}: read error: {e}", n + 1))?;
        if read == 0 {
            return Ok(());
        }
        n += 1;
        let line = buf.trim();
        if line.is_empty() {
            continue;
        }
        let parsed: ExportLine =
            serde_json::from_str(line).map_err(|e| format!("line {n}: {e:?}"))?;
        visit(parsed)?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avdb_types::{SiteId, VirtualTime};

    fn sample() -> RunExport {
        let mut export = RunExport {
            meta: Some(MetaLine { transport: "sim".into(), sites: 3, seed: 7 }),
            ..Default::default()
        };
        let mut col = crate::SpanCollector::new(SiteId(1));
        let root = col.start(9, 0, "update", VirtualTime(0), 1);
        col.instant(9, root, "checking", VirtualTime(0), 2);
        col.end(root, VirtualTime(4));
        export.add_spans(col.records());
        let mut log = crate::MessageLog::enabled();
        log.record(
            VirtualTime(1),
            SiteId(1),
            SiteId(0),
            "av-request",
            Some(crate::TraceContext::child(9, root, 3)),
        );
        export.add_messages(log.events());
        export.outcomes.push(OutcomeLine {
            txn: 9,
            site: 1,
            committed: true,
            detail: String::new(),
            at: 4,
            correspondences: 1,
        });
        let mut reg = crate::Registry::new();
        reg.inc("msg.sent.av-request");
        export.add_registry("site1", reg.snapshot());
        export.profile = Some(crate::critical_path::profile_export(&export));
        export
    }

    #[test]
    fn jsonl_roundtrips() {
        let export = sample();
        let text = export.to_jsonl();
        assert_eq!(text.lines().count(), 7);
        let back = RunExport::parse(&text).unwrap();
        assert_eq!(back.meta, export.meta);
        assert_eq!(back.spans, export.spans);
        assert_eq!(back.messages, export.messages);
        assert_eq!(back.outcomes, export.outcomes);
        assert_eq!(back.registries, export.registries);
        assert_eq!(back.registry("site1").unwrap().counter("msg.sent.av-request"), 1);
        assert_eq!(back.profile, export.profile);
        assert_eq!(back.profile.as_ref().unwrap().traces, 1);
    }

    #[test]
    fn parse_reports_malformed_lines() {
        let err = RunExport::parse("{\"nope\":1}\n").unwrap_err();
        assert!(err.starts_with("line 1"), "{err}");
    }

    #[test]
    fn parse_skips_blank_lines() {
        let export = RunExport::parse("\n\n").unwrap();
        assert!(export.spans.is_empty());
    }

    #[test]
    fn series_lines_roundtrip_one_window_per_line() {
        let mut reg = crate::Registry::new();
        let mut rec = crate::SeriesRecorder::new(10);
        reg.inc("update.committed");
        rec.roll(10, &mut reg);
        reg.add("update.committed", 2);
        rec.roll(20, &mut reg);
        let mut export = sample();
        export.add_series("site1", &rec.snapshot(&reg));
        let text = export.to_jsonl();
        assert_eq!(text.lines().count(), 9, "7 sample lines + 2 windows");
        let back = RunExport::parse(&text).unwrap();
        assert_eq!(back.series, export.series);
        let series = back.series_for("site1");
        assert_eq!(series.window_ticks, 10);
        assert_eq!(series.windows.len(), 2);
        assert_eq!(series.windows[1].counters["update.committed"], 2);
        assert_eq!(back.series_scopes(), vec!["site1"]);
        assert!(back.series_for("site9").windows.is_empty());
    }

    #[test]
    fn from_reader_matches_parse() {
        let text = sample().to_jsonl();
        let streamed = RunExport::from_reader(text.as_bytes()).unwrap();
        let parsed = RunExport::parse(&text).unwrap();
        assert_eq!(streamed.spans, parsed.spans);
        assert_eq!(streamed.registries, parsed.registries);
        assert_eq!(streamed.meta, parsed.meta);
    }

    #[test]
    fn for_each_line_streams_and_stops_on_visitor_error() {
        let text = sample().to_jsonl();
        let mut seen = 0;
        super::for_each_line(text.as_bytes(), |_| {
            seen += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, 7);
        let err = super::for_each_line(text.as_bytes(), |_| Err("stop".to_string()));
        assert_eq!(err.unwrap_err(), "stop");
    }
}
