//! JSONL export of one run's telemetry.
//!
//! Each line is one externally-tagged [`ExportLine`]. The owned-`String`
//! line types mirror the in-memory records ([`crate::SpanRecord`],
//! [`crate::MessageEvent`]) so an export file round-trips through the
//! vendored serde without borrowing `&'static str` labels.

use crate::critical_path::PhaseProfile;
use crate::message_log::MessageEvent;
use crate::registry::RegistrySnapshot;
use crate::span::SpanRecord;
use serde::{Deserialize, Serialize};

/// Run-level metadata (first line of an export).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MetaLine {
    /// Transport that produced the run ("sim", "threads", "tcp").
    pub transport: String,
    /// Number of sites.
    pub sites: u64,
    /// Workload/system seed.
    pub seed: u64,
}

/// One span, with owned strings (see [`crate::SpanRecord`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpanLine {
    /// Trace id.
    pub trace: u64,
    /// Span id.
    pub span: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    /// Recording site (raw id).
    pub site: u32,
    /// Phase name.
    pub name: String,
    /// Free-form detail.
    pub detail: String,
    /// Start tick.
    pub start: u64,
    /// End tick (`None` = never closed).
    pub end: Option<u64>,
    /// Lamport clock at open.
    pub clock: u64,
}

impl From<&SpanRecord> for SpanLine {
    fn from(r: &SpanRecord) -> Self {
        SpanLine {
            trace: r.trace,
            span: r.span,
            parent: r.parent,
            site: r.site.0,
            name: r.name.to_string(),
            detail: r.detail.clone(),
            start: r.start.ticks(),
            end: r.end.map(|e| e.ticks()),
            clock: r.clock,
        }
    }
}

/// One delivered message, with its piggybacked context flattened.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MessageLine {
    /// Delivery tick.
    pub at: u64,
    /// Sender (raw id).
    pub from: u32,
    /// Receiver (raw id).
    pub to: u32,
    /// Message kind.
    pub kind: String,
    /// Trace id, when a context was attached.
    pub trace: Option<u64>,
    /// Parent span id from the context.
    pub parent: Option<u64>,
    /// Sender's Lamport clock from the context.
    pub clock: Option<u64>,
}

impl From<&MessageEvent> for MessageLine {
    fn from(e: &MessageEvent) -> Self {
        MessageLine {
            at: e.at.ticks(),
            from: e.from.0,
            to: e.to.0,
            kind: e.kind.to_string(),
            trace: e.ctx.map(|c| c.trace_id),
            parent: e.ctx.map(|c| c.parent_span),
            clock: e.ctx.map(|c| c.clock),
        }
    }
}

/// One harness-visible update outcome.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutcomeLine {
    /// Raw transaction id (== the update's trace id).
    pub txn: u64,
    /// Origin site (raw id).
    pub site: u32,
    /// `true` for a commit, `false` for an abort.
    pub committed: bool,
    /// Abort reason or empty.
    pub detail: String,
    /// Completion tick.
    pub at: u64,
    /// Correspondences charged to the update.
    pub correspondences: u64,
}

/// One registry snapshot, tagged with its scope.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegistryLine {
    /// `"site<N>"` for a per-site accelerator registry, `"network"` for
    /// the transport substrate.
    pub scope: String,
    /// The snapshot.
    pub snapshot: RegistrySnapshot,
}

/// One line of a JSONL export.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ExportLine {
    /// Run metadata.
    Meta(MetaLine),
    /// One span.
    Span(SpanLine),
    /// One delivered message.
    Message(MessageLine),
    /// One update outcome.
    Outcome(OutcomeLine),
    /// One registry snapshot.
    Registry(RegistryLine),
    /// The run's critical-path phase profile.
    Profile(PhaseProfile),
}

/// A parsed (or assembled) run export.
#[derive(Clone, Debug, Default)]
pub struct RunExport {
    /// Run metadata, when present.
    pub meta: Option<MetaLine>,
    /// All spans, all sites.
    pub spans: Vec<SpanLine>,
    /// All delivered messages.
    pub messages: Vec<MessageLine>,
    /// All update outcomes.
    pub outcomes: Vec<OutcomeLine>,
    /// All registry snapshots.
    pub registries: Vec<RegistryLine>,
    /// The run's critical-path phase profile, when one was computed.
    pub profile: Option<PhaseProfile>,
}

impl RunExport {
    /// Adds every record of one site's span collector.
    pub fn add_spans(&mut self, records: &[SpanRecord]) {
        self.spans.extend(records.iter().map(SpanLine::from));
    }

    /// Adds every event of a message log.
    pub fn add_messages(&mut self, events: &[MessageEvent]) {
        self.messages.extend(events.iter().map(MessageLine::from));
    }

    /// Adds one scoped registry snapshot.
    pub fn add_registry(&mut self, scope: &str, snapshot: RegistrySnapshot) {
        self.registries.push(RegistryLine { scope: scope.to_string(), snapshot });
    }

    /// The registry snapshot for one scope, when present.
    pub fn registry(&self, scope: &str) -> Option<&RegistrySnapshot> {
        self.registries.iter().find(|r| r.scope == scope).map(|r| &r.snapshot)
    }

    /// Serializes to JSONL: meta first, then spans, messages, outcomes,
    /// registries.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let mut push = |line: &ExportLine| {
            out.push_str(&serde_json::to_string(line).expect("export lines serialize"));
            out.push('\n');
        };
        if let Some(meta) = &self.meta {
            push(&ExportLine::Meta(meta.clone()));
        }
        for s in &self.spans {
            push(&ExportLine::Span(s.clone()));
        }
        for m in &self.messages {
            push(&ExportLine::Message(m.clone()));
        }
        for o in &self.outcomes {
            push(&ExportLine::Outcome(o.clone()));
        }
        for r in &self.registries {
            push(&ExportLine::Registry(r.clone()));
        }
        if let Some(p) = &self.profile {
            push(&ExportLine::Profile(p.clone()));
        }
        out
    }

    /// Parses a JSONL export. Returns the first malformed line as an
    /// error (`"line <n>: <parse error>"`).
    pub fn parse(text: &str) -> Result<RunExport, String> {
        let mut export = RunExport::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed: ExportLine = serde_json::from_str(line)
                .map_err(|e| format!("line {}: {e:?}", i + 1))?;
            match parsed {
                ExportLine::Meta(m) => export.meta = Some(m),
                ExportLine::Span(s) => export.spans.push(s),
                ExportLine::Message(m) => export.messages.push(m),
                ExportLine::Outcome(o) => export.outcomes.push(o),
                ExportLine::Registry(r) => export.registries.push(r),
                ExportLine::Profile(p) => export.profile = Some(p),
            }
        }
        Ok(export)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use avdb_types::{SiteId, VirtualTime};

    fn sample() -> RunExport {
        let mut export = RunExport {
            meta: Some(MetaLine { transport: "sim".into(), sites: 3, seed: 7 }),
            ..Default::default()
        };
        let mut col = crate::SpanCollector::new(SiteId(1));
        let root = col.start(9, 0, "update", VirtualTime(0), 1);
        col.instant(9, root, "checking", VirtualTime(0), 2);
        col.end(root, VirtualTime(4));
        export.add_spans(col.records());
        let mut log = crate::MessageLog::enabled();
        log.record(
            VirtualTime(1),
            SiteId(1),
            SiteId(0),
            "av-request",
            Some(crate::TraceContext::child(9, root, 3)),
        );
        export.add_messages(log.events());
        export.outcomes.push(OutcomeLine {
            txn: 9,
            site: 1,
            committed: true,
            detail: String::new(),
            at: 4,
            correspondences: 1,
        });
        let mut reg = crate::Registry::new();
        reg.inc("msg.sent.av-request");
        export.add_registry("site1", reg.snapshot());
        export.profile = Some(crate::critical_path::profile_export(&export));
        export
    }

    #[test]
    fn jsonl_roundtrips() {
        let export = sample();
        let text = export.to_jsonl();
        assert_eq!(text.lines().count(), 7);
        let back = RunExport::parse(&text).unwrap();
        assert_eq!(back.meta, export.meta);
        assert_eq!(back.spans, export.spans);
        assert_eq!(back.messages, export.messages);
        assert_eq!(back.outcomes, export.outcomes);
        assert_eq!(back.registries, export.registries);
        assert_eq!(back.registry("site1").unwrap().counter("msg.sent.av-request"), 1);
        assert_eq!(back.profile, export.profile);
        assert_eq!(back.profile.as_ref().unwrap().traces, 1);
    }

    #[test]
    fn parse_reports_malformed_lines() {
        let err = RunExport::parse("{\"nope\":1}\n").unwrap_err();
        assert!(err.starts_with("line 1"), "{err}");
    }

    #[test]
    fn parse_skips_blank_lines() {
        let export = RunExport::parse("\n\n").unwrap();
        assert!(export.spans.is_empty());
    }
}
