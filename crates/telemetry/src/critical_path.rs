//! Causal critical-path extraction and the deterministic [`PhaseProfile`].
//!
//! For each committed update, the span tree (one trace) contains every
//! phase the update touched — checking, AV negotiation, 2PC rounds,
//! commit/replication — across all sites. The **critical path** is the
//! chain from the root span to the leaf that determined the commit time:
//! at every node we descend into the child whose `end` is latest (ties:
//! larger `start`, then smaller span id), because that child is what the
//! parent was still waiting on when it closed.
//!
//! Each path node is charged its **self time**: its own duration minus
//! the chosen child's (clamped into `[0, duration]`). The charges
//! telescope — summed along the path they equal the root span's duration
//! exactly, i.e. the update's measured commit latency. That additivity is
//! what makes the profile trustworthy for attribution: a phase's
//! self-time is the latency the commit would have saved had the phase
//! been instantaneous.
//!
//! [`PhaseProfile`] folds the paths of every committed update into
//! per-phase / per-site / per-link self-time histograms plus top-k
//! exemplar traces per phase. Everything is integer arithmetic over
//! deterministic span data, so a seeded run's profile is byte-identical
//! across machines.

use crate::context::is_aux_trace;
use crate::export::{RunExport, SpanLine};
use crate::registry::{Histogram, HistogramSnapshot, RegistrySnapshot};
use crate::span::SpanRecord;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Exemplar traces retained per phase.
pub const PROFILE_EXEMPLARS: usize = 3;

/// Borrowed, transport-agnostic view of one span (adapts both the
/// in-memory [`SpanRecord`] and the exported [`SpanLine`]).
#[derive(Clone, Copy, Debug)]
pub struct SpanView<'a> {
    /// Trace id.
    pub trace: u64,
    /// Span id.
    pub span: u64,
    /// Parent span id (`0` = root).
    pub parent: u64,
    /// Recording site (raw id).
    pub site: u32,
    /// Phase name.
    pub name: &'a str,
    /// Start tick.
    pub start: u64,
    /// End tick (`None` = never closed).
    pub end: Option<u64>,
}

impl<'a> From<&'a SpanRecord> for SpanView<'a> {
    fn from(r: &'a SpanRecord) -> Self {
        SpanView {
            trace: r.trace,
            span: r.span,
            parent: r.parent,
            site: r.site.0,
            name: r.name,
            start: r.start.ticks(),
            end: r.end.map(|e| e.ticks()),
        }
    }
}

impl<'a> From<&'a SpanLine> for SpanView<'a> {
    fn from(s: &'a SpanLine) -> Self {
        SpanView {
            trace: s.trace,
            span: s.span,
            parent: s.parent,
            site: s.site,
            name: &s.name,
            start: s.start,
            end: s.end,
        }
    }
}

/// One hop on a critical path.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathNode {
    /// Span id.
    pub span: u64,
    /// Recording site (raw id).
    pub site: u32,
    /// Phase name.
    pub name: String,
    /// Start tick.
    pub start: u64,
    /// End tick.
    pub end: u64,
    /// Latency charged to this node (duration − descendant duration).
    pub self_ticks: u64,
    /// Wait from the previous (parent) node's start to this node's start
    /// when the hop crossed sites; 0 for same-site hops and the root.
    pub link_wait_ticks: u64,
}

/// The critical path of one committed update.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Trace id (== the update's raw `TxnId`).
    pub trace: u64,
    /// Root span duration == commit latency in ticks.
    pub total_ticks: u64,
    /// Root-to-leaf chain.
    pub nodes: Vec<PathNode>,
}

impl CriticalPath {
    /// Sum of self times along the path (equal to `total_ticks` by
    /// construction — asserted in tests, relied on by the profile).
    pub fn self_sum(&self) -> u64 {
        self.nodes.iter().map(|n| n.self_ticks).sum()
    }
}

/// Extracts the critical path from one trace's spans. Returns `None`
/// when the trace has no closed root span. Open children (cut short by a
/// fault) never extend the path — their latency stays charged to the
/// parent that was waiting on them.
pub fn critical_path<'a, I>(spans: I) -> Option<CriticalPath>
where
    I: IntoIterator<Item = SpanView<'a>>,
{
    let spans: Vec<SpanView<'a>> = spans.into_iter().collect();
    let root = spans
        .iter()
        .filter(|s| s.parent == 0 && s.end.is_some())
        .min_by_key(|s| s.span)?;
    let mut children: BTreeMap<u64, Vec<&SpanView<'a>>> = BTreeMap::new();
    for s in &spans {
        if s.parent != 0 && s.end.is_some() {
            children.entry(s.parent).or_default().push(s);
        }
    }

    let mut nodes = Vec::new();
    let mut seen = BTreeSet::new();
    let mut cur = root;
    loop {
        if !seen.insert(cur.span) {
            break; // defensive: a malformed cycle must not hang the walk
        }
        let end = cur.end.expect("path nodes are closed");
        let dur = end.saturating_sub(cur.start);
        let next = children.get(&cur.span).and_then(|kids| {
            kids.iter()
                .copied()
                .max_by(|a, b| {
                    (a.end, a.start, std::cmp::Reverse(a.span))
                        .cmp(&(b.end, b.start, std::cmp::Reverse(b.span)))
                })
        });
        let child_dur = next
            .map(|c| c.end.expect("closed").saturating_sub(c.start).min(dur))
            .unwrap_or(0);
        let prev_site = nodes.last().map(|n: &PathNode| n.site);
        let prev_start = nodes.last().map(|n: &PathNode| n.start).unwrap_or(cur.start);
        nodes.push(PathNode {
            span: cur.span,
            site: cur.site,
            name: cur.name.to_string(),
            start: cur.start,
            end,
            self_ticks: dur - child_dur,
            link_wait_ticks: match prev_site {
                Some(p) if p != cur.site => cur.start.saturating_sub(prev_start),
                _ => 0,
            },
        });
        match next {
            Some(c) => cur = c,
            None => break,
        }
    }
    Some(CriticalPath {
        trace: root.trace,
        total_ticks: root.end.unwrap().saturating_sub(root.start),
        nodes,
    })
}

/// One exemplar trace for a phase: the self time it spent there.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Trace id.
    pub trace: u64,
    /// Self ticks the trace's path charged to the phase.
    pub self_ticks: u64,
}

/// Deterministic fold of every committed update's critical path.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Committed traces folded in.
    pub traces: u64,
    /// Σ root-span durations (total commit latency).
    pub total_commit_ticks: u64,
    /// Σ path self times — equals `total_commit_ticks` by construction.
    pub total_self_ticks: u64,
    /// Self-time histogram per phase name.
    pub phase_self: BTreeMap<String, HistogramSnapshot>,
    /// Self-time histogram per site (`"s<N>"`).
    pub site_self: BTreeMap<String, HistogramSnapshot>,
    /// Cross-site hop wait histogram per link (`"s<from>-s<to>"`).
    pub link_wait: BTreeMap<String, HistogramSnapshot>,
    /// Top-[`PROFILE_EXEMPLARS`] traces per phase by self time
    /// (descending, trace id ascending on ties).
    pub exemplars: BTreeMap<String, Vec<Exemplar>>,
}

impl PhaseProfile {
    /// `true` when no path was folded in.
    pub fn is_empty(&self) -> bool {
        self.traces == 0
    }

    /// Mean self ticks a committed update spent in `phase`.
    pub fn phase_mean(&self, phase: &str) -> f64 {
        self.phase_self.get(phase).map(|h| h.mean()).unwrap_or(0.0)
    }

    /// Per-phase mean self-time, scaled by 1000 (integer-deterministic),
    /// keyed by phase — the shape `avdb-bench compare` attributes with.
    pub fn phase_self_milli(&self) -> BTreeMap<String, u64> {
        self.phase_self
            .iter()
            .filter(|(_, h)| h.count > 0)
            .map(|(k, h)| (k.clone(), h.sum.saturating_mul(1000) / h.count))
            .collect()
    }

    /// Flattens the profile into a registry snapshot (scope `"profile"`
    /// in exports, merged into `/metrics`). Exemplar trace ids surface as
    /// `profile.exemplar.<phase>.<rank>` counters.
    pub fn to_registry_snapshot(&self) -> RegistrySnapshot {
        let mut snap = RegistrySnapshot::default();
        snap.counters.insert("profile.traces".into(), self.traces);
        snap.counters.insert("profile.commit.ticks".into(), self.total_commit_ticks);
        snap.counters.insert("profile.self.ticks".into(), self.total_self_ticks);
        for (name, h) in &self.phase_self {
            snap.histograms.insert(format!("profile.phase.{name}.self"), h.clone());
        }
        for (site, h) in &self.site_self {
            snap.histograms.insert(format!("profile.site.{site}.self"), h.clone());
        }
        for (link, h) in &self.link_wait {
            snap.histograms.insert(format!("profile.link.{link}.wait"), h.clone());
        }
        for (phase, exs) in &self.exemplars {
            for (rank, ex) in exs.iter().enumerate() {
                snap.counters.insert(
                    format!("profile.exemplar.{phase}.{rank}"),
                    ex.trace,
                );
            }
        }
        snap
    }

    /// Plain-text summary, phases in canonical order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "phase profile: {} committed paths, {} self ticks / {} commit ticks",
            self.traces, self.total_self_ticks, self.total_commit_ticks
        );
        let mut names: Vec<&String> = self.phase_self.keys().collect();
        names.sort_by_key(|n| crate::analyze::phase_sort_key(n));
        for name in names {
            let h = &self.phase_self[name];
            let exs = self
                .exemplars
                .get(name)
                .map(|v| {
                    v.iter()
                        .map(|e| format!("{:#x}", e.trace))
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {name:<12} n={:<6} self Σ={:<8} mean={:<8.1} p99={:<6} max={:<6} exemplars=[{exs}]",
                h.count,
                h.sum,
                h.mean(),
                h.percentile(0.99),
                h.max,
            );
        }
        for (link, h) in &self.link_wait {
            let _ = writeln!(
                out,
                "  link {link:<8} n={:<6} wait mean={:<8.1} p99={}",
                h.count,
                h.mean(),
                h.percentile(0.99)
            );
        }
        out
    }
}

/// Incremental [`PhaseProfile`] builder.
#[derive(Clone, Debug, Default)]
pub struct ProfileBuilder {
    traces: u64,
    total_commit: u64,
    total_self: u64,
    phase: BTreeMap<String, Histogram>,
    site: BTreeMap<String, Histogram>,
    link: BTreeMap<String, Histogram>,
    exemplars: BTreeMap<String, Vec<Exemplar>>,
}

impl ProfileBuilder {
    /// Folds one committed update's path into the profile.
    pub fn add_path(&mut self, path: &CriticalPath) {
        self.traces += 1;
        self.total_commit += path.total_ticks;
        let mut per_phase: BTreeMap<&str, u64> = BTreeMap::new();
        for (i, node) in path.nodes.iter().enumerate() {
            self.total_self += node.self_ticks;
            *per_phase.entry(node.name.as_str()).or_default() += node.self_ticks;
            self.phase.entry(node.name.clone()).or_default().observe(node.self_ticks);
            self.site.entry(format!("s{}", node.site)).or_default().observe(node.self_ticks);
            if node.link_wait_ticks > 0 && i > 0 {
                let key = format!("s{}-s{}", path.nodes[i - 1].site, node.site);
                self.link.entry(key).or_default().observe(node.link_wait_ticks);
            }
        }
        for (name, self_ticks) in per_phase {
            let exs = self.exemplars.entry(name.to_string()).or_default();
            exs.push(Exemplar { trace: path.trace, self_ticks });
            exs.sort_by(|a, b| {
                b.self_ticks.cmp(&a.self_ticks).then(a.trace.cmp(&b.trace))
            });
            exs.truncate(PROFILE_EXEMPLARS);
        }
    }

    /// Finalizes into a serializable profile.
    pub fn finish(self) -> PhaseProfile {
        PhaseProfile {
            traces: self.traces,
            total_commit_ticks: self.total_commit,
            total_self_ticks: self.total_self,
            phase_self: self.phase.into_iter().map(|(k, h)| (k, h.snapshot())).collect(),
            site_self: self.site.into_iter().map(|(k, h)| (k, h.snapshot())).collect(),
            link_wait: self.link.into_iter().map(|(k, h)| (k, h.snapshot())).collect(),
            exemplars: self.exemplars,
        }
    }
}

/// Builds the profile over an arbitrary span set: committed, non-aux
/// traces only, folded in ascending trace-id order (deterministic).
pub fn build_profile<'a, I>(spans: I, committed: &BTreeSet<u64>) -> PhaseProfile
where
    I: IntoIterator<Item = SpanView<'a>>,
{
    let mut by_trace: BTreeMap<u64, Vec<SpanView<'a>>> = BTreeMap::new();
    for s in spans {
        if !is_aux_trace(s.trace) && committed.contains(&s.trace) {
            by_trace.entry(s.trace).or_default().push(s);
        }
    }
    let mut builder = ProfileBuilder::default();
    for (_, spans) in by_trace {
        // A bare root with no other retained span is a head-sampling
        // drop, not a measured path: its whole latency would land on the
        // root phase and swamp the profile at low sample rates. Every
        // fully-traced committed update records at least one child
        // (checking/commit instants), so this skips nothing at rate 1.0.
        if spans.len() < 2 {
            continue;
        }
        if let Some(path) = critical_path(spans) {
            builder.add_path(&path);
        }
    }
    builder.finish()
}

/// Builds the profile for a whole run export.
pub fn profile_export(export: &RunExport) -> PhaseProfile {
    let committed: BTreeSet<u64> =
        export.outcomes.iter().filter(|o| o.committed).map(|o| o.txn).collect();
    build_profile(export.spans.iter().map(SpanView::from), &committed)
}

/// The critical path of one trace in an export, when it committed a
/// closed root.
pub fn path_for_trace(export: &RunExport, trace: u64) -> Option<CriticalPath> {
    critical_path(
        export.spans.iter().filter(|s| s.trace == trace).map(SpanView::from),
    )
}

/// Renders one update's annotated critical path (for
/// `avdb-trace critical-path`).
pub fn render_path(path: &CriticalPath) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "critical path of trace {:#x}: {} ticks over {} hops",
        path.trace,
        path.total_ticks,
        path.nodes.len()
    );
    for (i, n) in path.nodes.iter().enumerate() {
        let pct = (n.self_ticks * 100)
            .checked_div(path.total_ticks)
            .unwrap_or(0);
        let hop = if n.link_wait_ticks > 0 {
            format!("  (hop wait {})", n.link_wait_ticks)
        } else {
            String::new()
        };
        let _ = writeln!(
            out,
            "{:indent$}[t={}..{}] site{} {:<12} self={} ({pct}%){hop}",
            "",
            n.start,
            n.end,
            n.site,
            n.name,
            n.self_ticks,
            indent = i * 2
        );
    }
    let _ = writeln!(out, "self-time sum: {} / {} ticks", path.self_sum(), path.total_ticks);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::OutcomeLine;

    fn view(
        trace: u64,
        span: u64,
        parent: u64,
        site: u32,
        name: &'static str,
        start: u64,
        end: Option<u64>,
    ) -> SpanView<'static> {
        SpanView { trace, span, parent, site, name, start, end }
    }

    #[test]
    fn path_follows_latest_ending_child_and_telescopes() {
        // root 0..10; fast child 1..3; slow child 2..9 with grandchild 4..8.
        let spans = vec![
            view(7, 1, 0, 0, "update", 0, Some(10)),
            view(7, 2, 1, 0, "checking", 1, Some(3)),
            view(7, 3, 1, 0, "transfer", 2, Some(9)),
            view(7, 4, 3, 1, "grant", 4, Some(8)),
        ];
        let path = critical_path(spans).unwrap();
        let names: Vec<&str> = path.nodes.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(names, vec!["update", "transfer", "grant"]);
        assert_eq!(path.total_ticks, 10);
        assert_eq!(path.self_sum(), 10);
        // update: 10−7=3, transfer: 7−4=3, grant: 4.
        let selfs: Vec<u64> = path.nodes.iter().map(|n| n.self_ticks).collect();
        assert_eq!(selfs, vec![3, 3, 4]);
        // The grant hop crossed s0 → s1, wait = 4 − 2.
        assert_eq!(path.nodes[2].link_wait_ticks, 2);
        assert_eq!(path.nodes[1].link_wait_ticks, 0);
    }

    #[test]
    fn open_children_never_extend_the_path() {
        let spans = vec![
            view(7, 1, 0, 0, "update", 0, Some(10)),
            view(7, 2, 1, 0, "transfer", 1, None), // cut short by a fault
        ];
        let path = critical_path(spans).unwrap();
        assert_eq!(path.nodes.len(), 1);
        assert_eq!(path.nodes[0].self_ticks, 10);
    }

    #[test]
    fn no_closed_root_means_no_path() {
        assert!(critical_path(vec![view(7, 1, 0, 0, "update", 0, None)]).is_none());
        assert!(critical_path(Vec::new()).is_none());
    }

    #[test]
    fn tie_break_prefers_later_start_then_smaller_id() {
        let spans = vec![
            view(7, 1, 0, 0, "update", 0, Some(10)),
            view(7, 2, 1, 0, "a", 1, Some(9)),
            view(7, 3, 1, 0, "b", 4, Some(9)),
            view(7, 4, 1, 0, "c", 4, Some(9)),
        ];
        let path = critical_path(spans).unwrap();
        // Same end: b/c start later than a; b has the smaller id.
        assert_eq!(path.nodes[1].name, "b");
    }

    #[test]
    fn profile_is_deterministic_and_additive() {
        let spans = [
            view(7, 1, 0, 0, "update", 0, Some(10)),
            view(7, 3, 1, 0, "transfer", 2, Some(9)),
            view(8, 5, 0, 1, "update", 1, Some(5)),
            view(8, 6, 5, 1, "commit", 3, Some(5)),
            // aborted trace 9 and aux spans are excluded
            view(9, 7, 0, 0, "update", 0, Some(2)),
            view(crate::AUX_TRACE_FLAG | 1, 8, 0, 0, "replicate", 0, Some(4)),
        ];
        let committed: BTreeSet<u64> = [7, 8].into_iter().collect();
        let p1 = build_profile(spans.iter().copied(), &committed);
        let p2 = build_profile(spans.iter().copied(), &committed);
        assert_eq!(p1, p2);
        assert_eq!(p1.traces, 2);
        assert_eq!(p1.total_commit_ticks, 14);
        assert_eq!(p1.total_self_ticks, p1.total_commit_ticks);
        assert_eq!(p1.phase_self["update"].count, 2);
        assert_eq!(p1.phase_self["transfer"].sum, 7);
        // Phase self-times: trace 7 spends 3 ticks in "update", trace 8
        // spends 2 — so 7 leads the exemplar list.
        assert_eq!(p1.exemplars["update"][0].trace, 7);
    }

    #[test]
    fn exemplars_keep_top_k_by_self_time() {
        let mut b = ProfileBuilder::default();
        for (trace, dur) in [(1u64, 5u64), (2, 9), (3, 7), (4, 9)] {
            b.add_path(&CriticalPath {
                trace,
                total_ticks: dur,
                nodes: vec![PathNode {
                    span: trace,
                    site: 0,
                    name: "update".into(),
                    start: 0,
                    end: dur,
                    self_ticks: dur,
                    link_wait_ticks: 0,
                }],
            });
        }
        let p = b.finish();
        let traces: Vec<u64> = p.exemplars["update"].iter().map(|e| e.trace).collect();
        // 9-tick ties break on ascending trace id; 5 is pushed out.
        assert_eq!(traces, vec![2, 4, 3]);
    }

    #[test]
    fn profile_export_uses_committed_outcomes() {
        let mut export = RunExport::default();
        for v in [
            view(7, 1, 0, 0, "update", 0, Some(10)),
            view(7, 2, 1, 1, "commit", 4, Some(10)),
        ] {
            export.spans.push(SpanLine {
                trace: v.trace,
                span: v.span,
                parent: v.parent,
                site: v.site,
                name: v.name.to_string(),
                detail: String::new(),
                start: v.start,
                end: v.end,
                clock: 0,
            });
        }
        export.outcomes.push(OutcomeLine {
            txn: 7,
            site: 0,
            committed: true,
            detail: String::new(),
            at: 10,
            correspondences: 0,
        });
        let p = profile_export(&export);
        assert_eq!(p.traces, 1);
        assert_eq!(p.site_self["s1"].sum, 6);
        assert_eq!(p.link_wait["s0-s1"].count, 1);
        let snap = p.to_registry_snapshot();
        assert_eq!(snap.counter("profile.traces"), 1);
        assert!(snap.histograms.contains_key("profile.phase.update.self"));
        let path = path_for_trace(&export, 7).unwrap();
        assert!(render_path(&path).contains("critical path"));
    }
}
