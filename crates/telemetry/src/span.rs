//! Spans: named, timed operations forming per-trace causal trees.
//!
//! Each site owns a [`SpanCollector`] that mints deterministic span ids
//! (`site << 40 | seq`, the `TxnId` split) and accumulates records. The
//! collector survives simulated crashes on purpose: a crash wipes the
//! *protocol's* volatile state, but the telemetry of what happened before
//! the crash is exactly what a post-mortem needs, and remote children of
//! pre-crash spans must not become orphans.

use crate::context::SEQ_BITS;
use avdb_types::{SiteId, VirtualTime};
use serde::Serialize;

/// One operation in a causal tree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct SpanRecord {
    /// The causal tree this span belongs to.
    pub trace: u64,
    /// This span's id (unique per run).
    pub span: u64,
    /// Parent span id (`0` = trace root). May live on another site.
    pub parent: u64,
    /// The site that recorded the span.
    pub site: SiteId,
    /// Phase name ("update", "checking", "selecting", "transfer", …).
    pub name: &'static str,
    /// Free-form detail (product, amounts, peer) for timeline rendering.
    pub detail: String,
    /// When the operation began.
    pub start: VirtualTime,
    /// When it finished (`None` = still open, or cut short by a fault).
    pub end: Option<VirtualTime>,
    /// Lamport clock when the span was opened.
    pub clock: u64,
}

impl SpanRecord {
    /// Duration in ticks, for closed spans.
    pub fn duration(&self) -> Option<u64> {
        self.end.map(|e| e.since(self.start))
    }
}

/// Per-site span sink with deterministic id allocation.
#[derive(Clone, Debug)]
pub struct SpanCollector {
    site: SiteId,
    next_seq: u64,
    spans: Vec<SpanRecord>,
}

impl SpanCollector {
    /// An empty collector for one site. Sequence numbers start at 1 so a
    /// minted span id can never be `0`, the reserved "no parent" marker.
    pub fn new(site: SiteId) -> Self {
        SpanCollector { site, next_seq: 1, spans: Vec::new() }
    }

    fn next_id(&mut self) -> u64 {
        let id = ((self.site.0 as u64) << SEQ_BITS) | self.next_seq;
        self.next_seq += 1;
        id
    }

    /// Opens a span (no end time yet) and returns its id.
    pub fn start(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
    ) -> u64 {
        self.start_with(trace, parent, name, at, clock, String::new())
    }

    /// [`SpanCollector::start`] with a detail string.
    pub fn start_with(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
        detail: String,
    ) -> u64 {
        let span = self.next_id();
        self.spans.push(SpanRecord {
            trace,
            span,
            parent,
            site: self.site,
            name,
            detail,
            start: at,
            end: None,
            clock,
        });
        span
    }

    /// Records an instantaneous span (start == end) and returns its id.
    pub fn instant(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
    ) -> u64 {
        self.instant_with(trace, parent, name, at, clock, String::new())
    }

    /// [`SpanCollector::instant`] with a detail string.
    pub fn instant_with(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
        detail: String,
    ) -> u64 {
        let span = self.start_with(trace, parent, name, at, clock, detail);
        self.end(span, at);
        span
    }

    /// Closes an open span. Closing an unknown or already-closed span is
    /// a no-op: fault paths may race a timeout against the reply it was
    /// guarding, and telemetry must never panic the protocol.
    pub fn end(&mut self, span: u64, at: VirtualTime) {
        if let Some(rec) =
            self.spans.iter_mut().rev().find(|r| r.span == span && r.end.is_none())
        {
            rec.end = Some(at);
        }
    }

    /// Appends to a span's detail string.
    pub fn note(&mut self, span: u64, detail: &str) {
        if let Some(rec) = self.spans.iter_mut().rev().find(|r| r.span == span) {
            if !rec.detail.is_empty() {
                rec.detail.push_str("; ");
            }
            rec.detail.push_str(detail);
        }
    }

    /// All records so far, in open order.
    pub fn records(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_site_scoped() {
        let mut a = SpanCollector::new(SiteId(2));
        let mut b = SpanCollector::new(SiteId(2));
        let s1 = a.start(1, 0, "update", VirtualTime(0), 1);
        let s2 = b.start(1, 0, "update", VirtualTime(0), 1);
        assert_eq!(s1, s2);
        assert_eq!(s1 >> SEQ_BITS, 2);
        assert_ne!(s1, 0);
    }

    #[test]
    fn end_closes_only_open_spans() {
        let mut c = SpanCollector::new(SiteId(0));
        let s = c.start(9, 0, "transfer", VirtualTime(3), 1);
        c.end(s, VirtualTime(8));
        c.end(s, VirtualTime(99)); // no-op
        assert_eq!(c.records()[0].end, Some(VirtualTime(8)));
        assert_eq!(c.records()[0].duration(), Some(5));
        c.end(12345, VirtualTime(1)); // unknown id: no-op, no panic
    }

    #[test]
    fn instant_spans_have_zero_duration() {
        let mut c = SpanCollector::new(SiteId(1));
        c.instant_with(9, 0, "checking", VirtualTime(4), 2, "P0".into());
        let r = &c.records()[0];
        assert_eq!(r.duration(), Some(0));
        assert_eq!(r.detail, "P0");
    }

    #[test]
    fn note_appends() {
        let mut c = SpanCollector::new(SiteId(1));
        let s = c.start(9, 0, "transfer", VirtualTime(4), 2);
        c.note(s, "asked site2");
        c.note(s, "granted 5");
        assert_eq!(c.records()[0].detail, "asked site2; granted 5");
    }
}
