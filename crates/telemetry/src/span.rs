//! Spans: named, timed operations forming per-trace causal trees.
//!
//! Each site owns a [`SpanCollector`] that mints deterministic span ids
//! (`site << 40 | seq`, the `TxnId` split) and accumulates records. The
//! collector survives simulated crashes on purpose: a crash wipes the
//! *protocol's* volatile state, but the telemetry of what happened before
//! the crash is exactly what a post-mortem needs, and remote children of
//! pre-crash spans must not become orphans.
//!
//! ## Sampling
//!
//! With a [`TraceSampler`] installed, only sampled traces retain their
//! full span trees. Unsampled traces keep their **root** span (so commit
//! latency and the oracle's root-per-committed-txn invariant survive at
//! any rate) while interior spans are parked in a bounded ring. The ring
//! is the retroactive-promotion buffer: when the protocol decides after
//! the fact that a trace is interesting (abort, shortage path, latency
//! outlier), [`SpanCollector::promote`] pulls its parked spans back into
//! the retained set — and is *sticky*: the trace's later spans are
//! retained eagerly too, so a handler may promote at entry and every
//! span it records afterwards survives. Evicted ring records recycle
//! their detail `String`s through a small pool, so steady-state tracing
//! at low rates allocates almost nothing per update.
//!
//! Because every site derives the same sampler from the shared config,
//! the keep/drop decision for a trace is cluster-wide. Promotion is
//! origin-local, so each site promotes when *it* can recognize the
//! interesting event: the update's home site at outcome time (abort,
//! shortage, outlier), an AV granter when asked to grant (shortage
//! path), a 2PC participant when an abort decision arrives. Every such
//! event implies the home site promotes as well, so a promoted span's
//! cross-site parent is retained too and sampling can never manufacture
//! orphan spans.

use crate::context::SEQ_BITS;
use crate::sampling::TraceSampler;
use avdb_types::{SiteId, VirtualTime};
use serde::Serialize;
use std::collections::VecDeque;

/// Default capacity of the unsampled-span promotion ring.
pub const DEFAULT_SPAN_RING_CAPACITY: usize = 8192;

/// Upper bound on pooled detail buffers kept for reuse.
const DETAIL_POOL_CAP: usize = 256;

/// One operation in a causal tree.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct SpanRecord {
    /// The causal tree this span belongs to.
    pub trace: u64,
    /// This span's id (unique per run).
    pub span: u64,
    /// Parent span id (`0` = trace root). May live on another site.
    pub parent: u64,
    /// The site that recorded the span.
    pub site: SiteId,
    /// Phase name ("update", "checking", "selecting", "transfer", …).
    pub name: &'static str,
    /// Free-form detail (product, amounts, peer) for timeline rendering.
    pub detail: String,
    /// When the operation began.
    pub start: VirtualTime,
    /// When it finished (`None` = still open, or cut short by a fault).
    pub end: Option<VirtualTime>,
    /// Lamport clock when the span was opened.
    pub clock: u64,
}

impl SpanRecord {
    /// Duration in ticks, for closed spans.
    pub fn duration(&self) -> Option<u64> {
        self.end.map(|e| e.since(self.start))
    }
}

/// Per-site span sink with deterministic id allocation.
#[derive(Clone, Debug)]
pub struct SpanCollector {
    site: SiteId,
    next_seq: u64,
    spans: Vec<SpanRecord>,
    /// `None` = retain everything (pre-sampling behaviour).
    sampler: Option<TraceSampler>,
    /// Promotion-candidate filter: with a rescue sampler installed, only
    /// traces it samples park in the ring at all — every other unsampled
    /// interior span is dropped at mint, because nothing will ever
    /// promote it. `None` = every unsampled trace is a candidate.
    rescue: Option<TraceSampler>,
    /// Parked interior spans of unsampled traces, oldest first.
    ring: VecDeque<SpanRecord>,
    ring_cap: usize,
    /// Traces promoted on this site: retained eagerly from then on.
    /// Probed on every record of an unsampled trace (via
    /// [`SpanCollector::trace_sampled`]), so membership must be O(1).
    promoted: std::collections::HashSet<u64>,
    /// Recycled detail buffers from evicted ring records.
    pool: Vec<String>,
    /// Index of *open* retained spans (`span id → index in `spans``), so
    /// the per-event `end`/`note` calls on the hot path are O(1) instead
    /// of a reverse scan over every retained record. Entries are removed
    /// at close; records never move (the retained vec only grows).
    open_retained: std::collections::HashMap<u64, usize>,
    /// How many ring records each unsampled trace currently has parked,
    /// so [`SpanCollector::promote`] knows without scanning whether (and
    /// how far) to dig. Entries leave on eviction and on promotion.
    parked_per_trace: std::collections::HashMap<u64, u32>,
    /// Span ids currently in the ring, so `end`/`note` misses (spans
    /// dropped at mint) cost a hash probe instead of a ring scan.
    parked_ids: std::collections::HashSet<u64>,
    /// Reused scratch for promotion's ring surgery, so a shortage-heavy
    /// sampled run does not allocate a ring-sized buffer per promotion.
    promote_scratch: VecDeque<SpanRecord>,
    /// Interior spans evicted from the ring before any promotion.
    evicted: u64,
}

impl SpanCollector {
    /// An empty collector for one site. Sequence numbers start at 1 so a
    /// minted span id can never be `0`, the reserved "no parent" marker.
    pub fn new(site: SiteId) -> Self {
        SpanCollector {
            site,
            next_seq: 1,
            spans: Vec::new(),
            sampler: None,
            rescue: None,
            ring: VecDeque::new(),
            ring_cap: DEFAULT_SPAN_RING_CAPACITY,
            promoted: std::collections::HashSet::new(),
            pool: Vec::new(),
            open_retained: std::collections::HashMap::new(),
            parked_per_trace: std::collections::HashMap::new(),
            parked_ids: std::collections::HashSet::new(),
            promote_scratch: VecDeque::new(),
            evicted: 0,
        }
    }

    /// Installs a head-based sampler. A sampler at rate ≥ 1.0 is dropped
    /// so the fully-traced path stays byte-identical to a collector that
    /// never had one.
    pub fn set_sampler(&mut self, sampler: TraceSampler) {
        self.sampler = if sampler.is_always() { None } else { Some(sampler) };
    }

    /// Overrides the promotion-ring capacity (0 disables parking —
    /// unsampled interior spans are dropped immediately).
    pub fn set_ring_capacity(&mut self, cap: usize) {
        self.ring_cap = cap;
    }

    /// Installs the promotion-candidate (rescue) sampler. The caller must
    /// gate its `promote` calls on the *same* deterministic decision:
    /// spans of unsampled traces the rescue sampler rejects are dropped
    /// at mint and can never be promoted afterwards.
    pub fn set_rescue(&mut self, sampler: TraceSampler) {
        self.rescue = Some(sampler);
    }

    /// Whether an unsampled `trace` may later be promoted (and therefore
    /// must park its interior spans rather than drop them).
    fn rescued(&self, trace: u64) -> bool {
        match self.rescue {
            Some(r) => r.sampled(trace),
            None => true,
        }
    }

    /// Whether a span of `trace` under `parent` would be dropped at mint:
    /// an interior span of a trace that is neither head-sampled, already
    /// promoted, nor a rescue candidate. Callers use this to skip detail
    /// formatting for records that will not survive the call.
    fn discards(&self, trace: u64, parent: u64) -> bool {
        parent != 0 && !self.trace_sampled(trace) && !self.rescued(trace)
    }

    /// Whether a (sub-unity) sampler is installed — i.e. unsampled traces
    /// exist and promotion decisions actually matter.
    pub fn is_sampling(&self) -> bool {
        self.sampler.is_some()
    }

    /// Whether `trace`'s interior spans are retained eagerly (head-sampled
    /// or already promoted on this site).
    pub fn trace_sampled(&self, trace: u64) -> bool {
        match self.sampler {
            Some(s) => s.sampled(trace) || self.promoted.contains(&trace),
            None => true,
        }
    }

    fn next_id(&mut self) -> u64 {
        let id = ((self.site.0 as u64) << SEQ_BITS) | self.next_seq;
        self.next_seq += 1;
        id
    }

    /// A cleared, capacity-retaining detail buffer from the pool.
    pub fn pooled_detail(&mut self) -> String {
        self.pool.pop().unwrap_or_default()
    }

    fn park(&mut self, rec: SpanRecord) {
        if self.ring_cap == 0 {
            self.recycle(rec);
            self.evicted += 1;
            return;
        }
        if self.ring.len() >= self.ring_cap {
            if let Some(old) = self.ring.pop_front() {
                self.unpark_count(old.trace);
                self.parked_ids.remove(&old.span);
                self.recycle(old);
                self.evicted += 1;
            }
        }
        *self.parked_per_trace.entry(rec.trace).or_insert(0) += 1;
        self.parked_ids.insert(rec.span);
        self.ring.push_back(rec);
    }

    /// One fewer record of `trace` parked; drops the entry at zero so the
    /// map stays bounded by the ring's distinct-trace count.
    fn unpark_count(&mut self, trace: u64) {
        if let Some(n) = self.parked_per_trace.get_mut(&trace) {
            *n -= 1;
            if *n == 0 {
                self.parked_per_trace.remove(&trace);
            }
        }
    }

    fn recycle(&mut self, rec: SpanRecord) {
        if self.pool.len() < DETAIL_POOL_CAP {
            let mut s = rec.detail;
            s.clear();
            self.pool.push(s);
        }
    }

    /// Opens a span (no end time yet) and returns its id.
    pub fn start(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
    ) -> u64 {
        self.start_with(trace, parent, name, at, clock, String::new())
    }

    /// [`SpanCollector::start`] with a detail string.
    pub fn start_with(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
        detail: String,
    ) -> u64 {
        self.push_record(trace, parent, name, at, None, clock, detail)
    }

    /// Records a span with its end already decided. Instant spans go
    /// through here so a parked (unsampled) instant never needs a
    /// retained-set lookup via [`SpanCollector::end`] — at scale that
    /// lookup is a per-event linear scan.
    fn push_record(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        end: Option<VirtualTime>,
        clock: u64,
        detail: String,
    ) -> u64 {
        let span = self.next_id();
        let rec = SpanRecord {
            trace,
            span,
            parent,
            site: self.site,
            name,
            detail,
            start: at,
            end,
            clock,
        };
        // Roots are always retained: they carry commit latency and anchor
        // the oracle's root-per-committed-txn invariant at any rate.
        if parent == 0 || self.trace_sampled(trace) {
            if end.is_none() {
                self.open_retained.insert(span, self.spans.len());
            }
            self.spans.push(rec);
        } else if self.rescued(trace) {
            self.park(rec);
        } else {
            // Not a promotion candidate: parking would only displace
            // spans that still have a chance of rescue.
            self.recycle(rec);
            self.evicted += 1;
        }
        span
    }

    /// [`SpanCollector::start_with`] writing `args` into a pooled buffer,
    /// so hot paths can format details without a fresh allocation.
    pub fn start_args(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
        args: std::fmt::Arguments<'_>,
    ) -> u64 {
        use std::fmt::Write as _;
        if self.discards(trace, parent) {
            return self.push_record(trace, parent, name, at, None, clock, String::new());
        }
        let mut detail = self.pooled_detail();
        let _ = detail.write_fmt(args);
        self.start_with(trace, parent, name, at, clock, detail)
    }

    /// Records an instantaneous span (start == end) and returns its id.
    pub fn instant(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
    ) -> u64 {
        self.instant_with(trace, parent, name, at, clock, String::new())
    }

    /// [`SpanCollector::instant`] with a detail string.
    pub fn instant_with(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
        detail: String,
    ) -> u64 {
        self.push_record(trace, parent, name, at, Some(at), clock, detail)
    }

    /// [`SpanCollector::instant_with`] writing `args` into a pooled buffer.
    pub fn instant_args(
        &mut self,
        trace: u64,
        parent: u64,
        name: &'static str,
        at: VirtualTime,
        clock: u64,
        args: std::fmt::Arguments<'_>,
    ) -> u64 {
        use std::fmt::Write as _;
        if self.discards(trace, parent) {
            return self.push_record(trace, parent, name, at, Some(at), clock, String::new());
        }
        let mut detail = self.pooled_detail();
        let _ = detail.write_fmt(args);
        self.instant_with(trace, parent, name, at, clock, detail)
    }

    /// Closes an open span. Closing an unknown or already-closed span is
    /// a no-op: fault paths may race a timeout against the reply it was
    /// guarding, and telemetry must never panic the protocol.
    pub fn end(&mut self, span: u64, at: VirtualTime) {
        if let Some(i) = self.open_retained.remove(&span) {
            self.spans[i].end = Some(at);
            return;
        }
        if !self.parked_ids.contains(&span) {
            return; // dropped at mint (or already evicted): O(1) miss.
        }
        if let Some(rec) =
            self.ring.iter_mut().rev().find(|r| r.span == span && r.end.is_none())
        {
            rec.end = Some(at);
        }
    }

    /// Appends to a span's detail string.
    pub fn note(&mut self, span: u64, detail: &str) {
        if let Some(rec) = self.find_for_note(span) {
            if !rec.detail.is_empty() {
                rec.detail.push_str("; ");
            }
            rec.detail.push_str(detail);
        }
    }

    /// Locates a span for annotation: open retained spans through the
    /// index, parked ones by reverse scan of the (bounded) ring guarded
    /// by an O(1) membership probe, closed retained ones by cold-path
    /// reverse scan. Under sampling the cold scan is skipped entirely —
    /// protocol code only annotates open spans, and letting every note
    /// to a mint-dropped span walk the whole retained vec would be
    /// quadratic in updates.
    fn find_for_note(&mut self, span: u64) -> Option<&mut SpanRecord> {
        if let Some(&i) = self.open_retained.get(&span) {
            return Some(&mut self.spans[i]);
        }
        if self.parked_ids.contains(&span) {
            return self.ring.iter_mut().rev().find(|r| r.span == span);
        }
        if self.sampler.is_none() {
            return self.spans.iter_mut().rev().find(|r| r.span == span);
        }
        None
    }

    /// [`SpanCollector::note`] writing `args` straight into the span's
    /// detail buffer, so hot paths annotate without a temporary `String`.
    pub fn note_args(&mut self, span: u64, args: std::fmt::Arguments<'_>) {
        use std::fmt::Write as _;
        if let Some(rec) = self.find_for_note(span) {
            if !rec.detail.is_empty() {
                rec.detail.push_str("; ");
            }
            let _ = rec.detail.write_fmt(args);
        }
    }

    /// Retroactively promotes a trace: every parked span of `trace` still
    /// in the ring moves (in recording order) into the retained set, and
    /// the trace's future spans are retained eagerly (sticky), so a
    /// handler can promote at entry and keep everything it records after.
    /// Returns how many parked spans were moved. Idempotent — a second
    /// call finds nothing left to move.
    pub fn promote(&mut self, trace: u64) -> usize {
        let Some(sampler) = self.sampler else {
            return 0;
        };
        if sampler.sampled(trace) {
            return 0; // head-sampled: nothing of this trace ever parks.
        }
        if !self.promoted.insert(trace) {
            // Sticky promotion retains the trace's later spans eagerly,
            // so nothing new can have parked since the first call — skip
            // the ring surgery that repeat promotions (one per replicated
            // delta) would otherwise pay.
            return 0;
        }
        let Some(want) = self.parked_per_trace.remove(&trace) else {
            return 0;
        };
        // Dig from the *back*: a trace promoted while its protocol round
        // is still in flight parked its spans recently, so the scan
        // usually touches a handful of records instead of the whole ring.
        // Popped bystanders go to the reused scratch and are restored
        // afterwards; relative order (and thus eviction order) is kept.
        let mut kept = std::mem::take(&mut self.promote_scratch);
        let mut matches: Vec<SpanRecord> = Vec::with_capacity(want as usize);
        while (matches.len() as u32) < want {
            let Some(rec) = self.ring.pop_back() else { break };
            if rec.trace == trace {
                self.parked_ids.remove(&rec.span);
                matches.push(rec);
            } else {
                kept.push_back(rec);
            }
        }
        while let Some(rec) = kept.pop_back() {
            self.ring.push_back(rec);
        }
        self.promote_scratch = kept;
        let promoted = matches.len();
        while let Some(rec) = matches.pop() {
            if rec.end.is_none() {
                self.open_retained.insert(rec.span, self.spans.len());
            }
            self.spans.push(rec);
        }
        promoted
    }

    /// All retained records so far, in open order (promoted spans append
    /// at promotion time, which is itself deterministic).
    pub fn records(&self) -> &[SpanRecord] {
        &self.spans
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// `(retained, parked, evicted)` span counts for observability.
    pub fn sampling_stats(&self) -> (usize, usize, u64) {
        (self.spans.len(), self.ring.len(), self.evicted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_site_scoped() {
        let mut a = SpanCollector::new(SiteId(2));
        let mut b = SpanCollector::new(SiteId(2));
        let s1 = a.start(1, 0, "update", VirtualTime(0), 1);
        let s2 = b.start(1, 0, "update", VirtualTime(0), 1);
        assert_eq!(s1, s2);
        assert_eq!(s1 >> SEQ_BITS, 2);
        assert_ne!(s1, 0);
    }

    #[test]
    fn end_closes_only_open_spans() {
        let mut c = SpanCollector::new(SiteId(0));
        let s = c.start(9, 0, "transfer", VirtualTime(3), 1);
        c.end(s, VirtualTime(8));
        c.end(s, VirtualTime(99)); // no-op
        assert_eq!(c.records()[0].end, Some(VirtualTime(8)));
        assert_eq!(c.records()[0].duration(), Some(5));
        c.end(12345, VirtualTime(1)); // unknown id: no-op, no panic
    }

    #[test]
    fn instant_spans_have_zero_duration() {
        let mut c = SpanCollector::new(SiteId(1));
        c.instant_with(9, 0, "checking", VirtualTime(4), 2, "P0".into());
        let r = &c.records()[0];
        assert_eq!(r.duration(), Some(0));
        assert_eq!(r.detail, "P0");
    }

    #[test]
    fn note_appends() {
        let mut c = SpanCollector::new(SiteId(1));
        let s = c.start(9, 0, "transfer", VirtualTime(4), 2);
        c.note(s, "asked site2");
        c.note(s, "granted 5");
        assert_eq!(c.records()[0].detail, "asked site2; granted 5");
    }

    fn never() -> TraceSampler {
        TraceSampler::new(0, 0.0)
    }

    #[test]
    fn unsampled_interior_spans_park_but_roots_stay() {
        let mut c = SpanCollector::new(SiteId(1));
        c.set_sampler(never());
        let root = c.start(9, 0, "update", VirtualTime(0), 1);
        let child = c.start(9, root, "transfer", VirtualTime(1), 2);
        c.end(child, VirtualTime(3));
        c.end(root, VirtualTime(4));
        assert_eq!(c.len(), 1);
        assert_eq!(c.records()[0].name, "update");
        assert_eq!(c.records()[0].end, Some(VirtualTime(4)));
        let (retained, parked, evicted) = c.sampling_stats();
        assert_eq!((retained, parked, evicted), (1, 1, 0));
    }

    #[test]
    fn promote_restores_parked_spans_in_order() {
        let mut c = SpanCollector::new(SiteId(1));
        c.set_sampler(never());
        let root = c.start(9, 0, "update", VirtualTime(0), 1);
        let t1 = c.start(9, root, "transfer", VirtualTime(1), 2);
        let other_root = c.start(8, 0, "update", VirtualTime(1), 3);
        let t2 = c.start(8, other_root, "transfer", VirtualTime(2), 4);
        let t3 = c.start(9, root, "commit", VirtualTime(3), 5);
        c.end(t1, VirtualTime(2));
        c.end(t3, VirtualTime(4));
        assert_eq!(c.promote(9), 2);
        assert_eq!(c.promote(9), 0); // idempotent
        let names: Vec<_> =
            c.records().iter().filter(|r| r.trace == 9).map(|r| r.name).collect();
        assert_eq!(names, vec!["update", "transfer", "commit"]);
        assert!(c.records().iter().any(|r| r.span == t1 && r.end == Some(VirtualTime(2))));
        // Trace 8's interior span is still parked, untouched.
        assert!(c.records().iter().all(|r| r.span != t2));
        assert_eq!(c.sampling_stats().1, 1);
    }

    #[test]
    fn promotion_is_sticky_for_later_spans() {
        let mut c = SpanCollector::new(SiteId(1));
        c.set_sampler(never());
        let root = c.start(9, 0, "update", VirtualTime(0), 1);
        c.promote(9);
        // Spans recorded after the promotion are retained eagerly, so a
        // handler can promote at entry before recording its work.
        let child = c.start(9, root, "grant", VirtualTime(1), 2);
        c.end(child, VirtualTime(2));
        assert_eq!(c.len(), 2);
        assert!(c.trace_sampled(9));
        assert!(!c.trace_sampled(8), "stickiness must be per-trace");
    }

    #[test]
    fn ring_evicts_oldest_and_recycles_details() {
        let mut c = SpanCollector::new(SiteId(0));
        c.set_sampler(never());
        c.set_ring_capacity(2);
        let root = c.start(5, 0, "update", VirtualTime(0), 1);
        for i in 0..4u64 {
            c.start_args(5, root, "transfer", VirtualTime(i), i, format_args!("hop {i}"));
        }
        let (_, parked, evicted) = c.sampling_stats();
        assert_eq!((parked, evicted), (2, 2));
        // Only the two newest interior spans survive for promotion.
        assert_eq!(c.promote(5), 2);
        let details: Vec<_> =
            c.records().iter().filter(|r| r.name == "transfer").map(|r| &r.detail).collect();
        assert_eq!(details, vec!["hop 2", "hop 3"]);
    }

    #[test]
    fn rate_one_sampler_is_a_noop() {
        let mut c = SpanCollector::new(SiteId(0));
        c.set_sampler(TraceSampler::new(3, 1.0));
        let root = c.start(5, 0, "update", VirtualTime(0), 1);
        c.start(5, root, "transfer", VirtualTime(1), 2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.sampling_stats().1, 0);
    }
}
