//! Offline analysis of a [`RunExport`]: causal-tree reconstruction,
//! orphan detection, per-phase latency breakdowns, and
//! message-amplification percentiles (the per-operation version of the
//! paper's Fig. 6).

use crate::context::is_aux_trace;
use crate::export::{RunExport, SpanLine};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// Spans whose parent does not exist within their own trace, as
/// `(trace, span)` pairs. `parent == 0` marks an intentional root and is
/// never an orphan.
pub fn find_orphans<I>(spans: I) -> Vec<(u64, u64)>
where
    I: IntoIterator<Item = (u64, u64, u64)> + Clone,
{
    let ids: BTreeSet<(u64, u64)> =
        spans.clone().into_iter().map(|(trace, span, _)| (trace, span)).collect();
    spans
        .into_iter()
        .filter(|(trace, _, parent)| *parent != 0 && !ids.contains(&(*trace, *parent)))
        .map(|(trace, span, _)| (trace, span))
        .collect()
}

/// Verdict of [`verify`]: is every committed update's causal tree
/// complete?
#[derive(Clone, Debug, Default)]
pub struct VerifyReport {
    /// Total spans inspected.
    pub spans: usize,
    /// Distinct traces seen.
    pub traces: usize,
    /// Committed outcomes in the export.
    pub committed: usize,
    /// `(trace, span)` pairs whose parent is missing from the trace.
    pub orphans: Vec<(u64, u64)>,
    /// Committed transaction ids with no root span in their trace.
    pub missing_roots: Vec<u64>,
}

impl VerifyReport {
    /// `true` when every committed update has a rooted, orphan-free tree.
    pub fn is_ok(&self) -> bool {
        self.orphans.is_empty() && self.missing_roots.is_empty()
    }
}

impl std::fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} spans in {} traces, {} committed updates",
            self.spans, self.traces, self.committed
        )?;
        for (trace, span) in &self.orphans {
            writeln!(f, "  orphan span {span:#x} in trace {trace:#x}")?;
        }
        for txn in &self.missing_roots {
            writeln!(f, "  committed txn {txn:#x} has no root span")?;
        }
        if self.is_ok() {
            writeln!(f, "  every committed update has a complete span tree")?;
        }
        Ok(())
    }
}

/// Checks span-tree completeness: no span may reference a parent missing
/// from its trace, and every committed outcome must have a root span.
pub fn verify(export: &RunExport) -> VerifyReport {
    let mut report = VerifyReport {
        spans: export.spans.len(),
        traces: export.spans.iter().map(|s| s.trace).collect::<BTreeSet<_>>().len(),
        ..Default::default()
    };
    report.orphans =
        find_orphans(export.spans.iter().map(|s| (s.trace, s.span, s.parent)).collect::<Vec<_>>());
    let roots: BTreeSet<u64> =
        export.spans.iter().filter(|s| s.parent == 0).map(|s| s.trace).collect();
    for outcome in &export.outcomes {
        if !outcome.committed {
            continue;
        }
        report.committed += 1;
        if !roots.contains(&outcome.txn) {
            report.missing_roots.push(outcome.txn);
        }
    }
    report
}

/// Aggregate duration statistics for one span name.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Closed spans measured.
    pub count: u64,
    /// Total ticks across them.
    pub total: u64,
    /// Longest single span.
    pub max: u64,
}

impl PhaseStats {
    /// Mean duration in ticks (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total as f64 / self.count as f64
        }
    }
}

/// The accelerator's phase order, for stable report layout. Names not in
/// this list sort after it, alphabetically.
pub const PHASE_ORDER: [&str; 6] =
    ["update", "checking", "selecting", "deciding", "transfer", "commit"];

/// Per-phase duration statistics over all *update* traces (auxiliary
/// replication traces excluded), keyed by span name.
pub fn phase_breakdown(export: &RunExport) -> BTreeMap<String, PhaseStats> {
    let mut phases: BTreeMap<String, PhaseStats> = BTreeMap::new();
    for span in &export.spans {
        if is_aux_trace(span.trace) {
            continue;
        }
        let Some(end) = span.end else { continue };
        let stats = phases.entry(span.name.clone()).or_default();
        let d = end.saturating_sub(span.start);
        stats.count += 1;
        stats.total += d;
        stats.max = stats.max.max(d);
    }
    phases
}

/// Sorts phase names: canonical accelerator order first, then the rest.
pub fn phase_sort_key(name: &str) -> (usize, String) {
    let idx = PHASE_ORDER.iter().position(|p| *p == name).unwrap_or(PHASE_ORDER.len());
    (idx, name.to_string())
}

/// Correspondences charged to each committed update, ascending — the
/// distribution behind the paper's mean-correspondences headline.
pub fn amplification(export: &RunExport) -> Vec<u64> {
    let mut counts: Vec<u64> = export
        .outcomes
        .iter()
        .filter(|o| o.committed)
        .map(|o| o.correspondences)
        .collect();
    counts.sort_unstable();
    counts
}

/// End-to-end latency of every committed update, ascending: the duration
/// of each committed trace's root span (submission to outcome emission).
/// One entry per committed transaction; updates whose root never closed
/// (crashed origin) are excluded. Units are whatever the transport's
/// clock ran in — virtual ticks on the simulator, wall milliseconds on
/// the live runtimes.
pub fn commit_latencies(export: &RunExport) -> Vec<u64> {
    let committed: BTreeSet<u64> =
        export.outcomes.iter().filter(|o| o.committed).map(|o| o.txn).collect();
    let mut seen = BTreeSet::new();
    let mut latencies: Vec<u64> = export
        .spans
        .iter()
        .filter(|s| {
            s.parent == 0 && !is_aux_trace(s.trace) && committed.contains(&s.trace)
        })
        .filter(|s| seen.insert(s.trace))
        .filter_map(|s| s.end.map(|e| e.saturating_sub(s.start)))
        .collect();
    latencies.sort_unstable();
    latencies
}

/// Nearest-rank percentile over an ascending slice (`0 < p ≤ 1`).
pub fn percentile_sorted(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Renders one trace's causal tree as an indented timeline, children
/// sorted by (start, Lamport clock, span id). Spans referencing a parent
/// missing from the trace are flagged inline.
pub fn render_timeline(export: &RunExport, trace: u64) -> String {
    let spans: Vec<&SpanLine> = export.spans.iter().filter(|s| s.trace == trace).collect();
    let mut out = String::new();
    if spans.is_empty() {
        let _ = writeln!(out, "trace {trace:#x}: no spans");
        return out;
    }
    let ids: BTreeSet<u64> = spans.iter().map(|s| s.span).collect();
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for (i, s) in spans.iter().enumerate() {
        if s.parent != 0 && ids.contains(&s.parent) {
            children.entry(s.parent).or_default().push(i);
        } else {
            roots.push(i);
        }
    }
    let order = |&i: &usize| (spans[i].start, spans[i].clock, spans[i].span);
    roots.sort_by_key(order);
    for list in children.values_mut() {
        list.sort_by_key(order);
    }
    let kind = if is_aux_trace(trace) { "aux" } else { "update" };
    let _ = writeln!(out, "trace {trace:#x} ({kind}, {} spans)", spans.len());
    let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&i| (i, 1)).collect();
    while let Some((i, depth)) = stack.pop() {
        let s = spans[i];
        let when = match s.end {
            Some(end) if end != s.start => format!("t={}..{}", s.start, end),
            Some(_) => format!("t={}", s.start),
            None => format!("t={}..?", s.start),
        };
        let orphan = if s.parent != 0 && !ids.contains(&s.parent) { " [orphan]" } else { "" };
        let detail = if s.detail.is_empty() {
            String::new()
        } else {
            format!("  ({})", s.detail)
        };
        let _ = writeln!(
            out,
            "{:indent$}[{when}] site{} {}{detail}{orphan}",
            "",
            s.site,
            s.name,
            indent = depth * 2
        );
        if let Some(kids) = children.get(&s.span) {
            for &k in kids.iter().rev() {
                stack.push((k, depth + 1));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{OutcomeLine, RunExport, SpanLine};

    fn span(trace: u64, span: u64, parent: u64, name: &str, start: u64, end: Option<u64>) -> SpanLine {
        SpanLine {
            trace,
            span,
            parent,
            site: (span >> 40) as u32,
            name: name.to_string(),
            detail: String::new(),
            start,
            end,
            clock: start,
        }
    }

    fn committed(txn: u64) -> OutcomeLine {
        OutcomeLine {
            txn,
            site: 0,
            committed: true,
            detail: String::new(),
            at: 0,
            correspondences: 2,
        }
    }

    #[test]
    fn orphans_are_per_trace() {
        // Span 2's parent lives in a *different* trace: orphan.
        let spans = vec![(1u64, 10u64, 0u64), (1, 11, 10), (2, 12, 10)];
        assert_eq!(find_orphans(spans), vec![(2, 12)]);
    }

    #[test]
    fn verify_flags_missing_roots_and_orphans() {
        let mut export = RunExport::default();
        export.spans.push(span(7, 1, 0, "update", 0, Some(4)));
        export.spans.push(span(7, 2, 1, "checking", 0, Some(0)));
        export.spans.push(span(7, 3, 99, "commit", 4, Some(4)));
        export.outcomes.push(committed(7));
        export.outcomes.push(committed(8)); // no spans at all
        let report = verify(&export);
        assert!(!report.is_ok());
        assert_eq!(report.orphans, vec![(7, 3)]);
        assert_eq!(report.missing_roots, vec![8]);
        assert_eq!(report.committed, 2);
    }

    #[test]
    fn verify_passes_complete_trees() {
        let mut export = RunExport::default();
        export.spans.push(span(7, 1, 0, "update", 0, Some(4)));
        export.spans.push(span(7, 2, 1, "commit", 4, Some(4)));
        export.outcomes.push(committed(7));
        assert!(verify(&export).is_ok());
    }

    #[test]
    fn phase_breakdown_skips_aux_and_open_spans() {
        let mut export = RunExport::default();
        export.spans.push(span(1, 1, 0, "update", 0, Some(6)));
        export.spans.push(span(1, 2, 1, "transfer", 1, Some(4)));
        export.spans.push(span(1, 3, 1, "transfer", 2, None)); // open
        export.spans.push(span(crate::AUX_TRACE_FLAG | 5, 4, 0, "replicate", 0, Some(9)));
        let phases = phase_breakdown(&export);
        assert_eq!(phases["update"].count, 1);
        assert_eq!(phases["transfer"].count, 1);
        assert_eq!(phases["transfer"].total, 3);
        assert!(!phases.contains_key("replicate"));
    }

    #[test]
    fn amplification_percentiles() {
        let mut export = RunExport::default();
        for (i, c) in [0u64, 0, 0, 2, 8].iter().enumerate() {
            let mut o = committed(i as u64);
            o.correspondences = *c;
            export.outcomes.push(o);
        }
        let amp = amplification(&export);
        assert_eq!(amp, vec![0, 0, 0, 2, 8]);
        assert_eq!(percentile_sorted(&amp, 0.5), 0);
        assert_eq!(percentile_sorted(&amp, 0.9), 8);
        assert_eq!(percentile_sorted(&[], 0.5), 0);
    }

    #[test]
    fn timeline_renders_nested_tree() {
        let mut export = RunExport::default();
        export.spans.push(span(7, 1, 0, "update", 0, Some(6)));
        export.spans.push(span(7, 2, 1, "checking", 0, Some(0)));
        export.spans.push(span(7, 3, 1, "transfer", 1, Some(5)));
        export.spans.push(span(7, 4, 3, "grant", 3, Some(3)));
        let text = render_timeline(&export, 7);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[1].contains("update"));
        assert!(lines[2].contains("checking"));
        assert!(lines[3].contains("transfer"));
        // grant is nested one level deeper than transfer
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert_eq!(indent(lines[4]), indent(lines[3]) + 2);
        assert!(render_timeline(&export, 99).contains("no spans"));
    }

    #[test]
    fn phase_sort_is_canonical_then_alpha() {
        let mut names = vec!["commit", "apply", "checking", "update"];
        names.sort_by_key(|n| phase_sort_key(n));
        assert_eq!(names, vec!["update", "checking", "commit", "apply"]);
    }
}
