//! System-level properties of the shortage-path fast lane: coalesced
//! replication must converge to the same replicated state as the
//! uncoalesced path on the same seed, and parallel AV fan-out (with
//! over-grant return and grant timeouts) must conserve the system-wide
//! AV per product — clean and under message loss.

mod common;

use avdb::prelude::*;
use avdb::simnet::DetRng;
use avdb::types::AvAllocation;
use common::{assert_oracle_sim, settle_sim, Submissions};

/// A seeded shortage-heavy schedule: mostly retailer decrements spread
/// over every site, plus maker increments at the base to keep stock
/// above the escrow floor.
fn schedule(seed: u64, n_sites: usize, n_products: u32, n: usize) -> Vec<(VirtualTime, UpdateRequest)> {
    let mut rng = DetRng::new(seed).derive(0xFA57);
    (0..n)
        .map(|i| {
            let site = SiteId(rng.gen_range(n_sites as u64) as u32);
            let product = ProductId(rng.gen_range(n_products as u64) as u32);
            let delta = if site == SiteId::BASE && rng.gen_f64() < 0.5 {
                Volume(rng.gen_i64_inclusive(4, 12))
            } else {
                Volume(-rng.gen_i64_inclusive(1, 9))
            };
            (VirtualTime(i as u64 * 6), UpdateRequest::new(site, product, delta))
        })
        .collect()
}

fn run(cfg: SystemConfig, sched: &[(VirtualTime, UpdateRequest)]) -> DistributedSystem {
    let mut sys = DistributedSystem::new(cfg);
    let mut subs = Submissions::new();
    for (at, req) in sched {
        subs.submit_at(&mut sys, *at, *req);
    }
    sys.run_until_quiescent();
    settle_sim(&mut sys);
    let outcomes = sys.drain_outcomes();
    assert_oracle_sim(&sys, subs, outcomes, "fast-lane run conforms");
    sys
}

/// Final replicated state of a settled system: stock at every site plus
/// the system-wide AV total, per product.
fn state_matrix(sys: &DistributedSystem, n_sites: usize, n_products: u32) -> Vec<Vec<i64>> {
    (0..n_products)
        .map(|p| {
            let mut row: Vec<i64> = SiteId::all(n_sites)
                .map(|s| sys.stock(s, ProductId(p)).0)
                .collect();
            row.push(sys.av_system_total(ProductId(p)).0);
            row
        })
        .collect()
}

#[test]
fn coalesced_propagation_converges_to_the_uncoalesced_state() {
    const SITES: usize = 4;
    const PRODUCTS: u32 = 3;
    for seed in 0..10u64 {
        let cfg = |coalesce: bool| {
            SystemConfig::builder()
                .sites(SITES)
                .regular_products(PRODUCTS as usize, Volume(400))
                .propagation_batch(4)
                .coalesce_propagation(coalesce)
                .seed(seed)
                .build()
                .unwrap()
        };
        let sched = schedule(seed, SITES, PRODUCTS, 60);
        let plain = run(cfg(false), &sched);
        let coalesced = run(cfg(true), &sched);
        assert_eq!(
            state_matrix(&plain, SITES, PRODUCTS),
            state_matrix(&coalesced, SITES, PRODUCTS),
            "seed {seed}: coalesced frames must replicate the same state"
        );
        coalesced.check_convergence().expect("coalesced replicas converge");
    }
}

#[test]
fn fanout_conserves_system_av_on_clean_links() {
    const SITES: usize = 5;
    const PRODUCTS: u32 = 2;
    for seed in 0..20u64 {
        // All AV starts at the base, so every remote decrement opens a
        // shortage and the fan-out burst path carries the run.
        let cfg = SystemConfig::builder()
            .sites(SITES)
            .regular_products(PRODUCTS as usize, Volume(60 * SITES as i64))
            .av_allocation(AvAllocation::AllAtBase)
            .shortage_fanout(3)
            .seed(seed)
            .build()
            .unwrap();
        let sys = run(cfg, &schedule(seed, SITES, PRODUCTS, 50));
        for p in 0..PRODUCTS {
            if let Err((expected, actual)) = sys.check_av_conservation(ProductId(p)) {
                panic!("seed {seed} product{p}: expected AV {expected}, got {actual}");
            }
        }
    }
}

#[test]
fn fanout_never_mints_av_under_loss_and_rebalancing() {
    const SITES: usize = 4;
    const PRODUCTS: u32 = 2;
    for seed in 0..20u64 {
        let cfg = SystemConfig::builder()
            .sites(SITES)
            .regular_products(PRODUCTS as usize, Volume(50 * SITES as i64))
            .av_allocation(AvAllocation::AllAtBase)
            .shortage_fanout(4)
            .rebalance_horizon_ticks(200)
            .coalesce_propagation(true)
            .propagation_batch(3)
            .drop_probability(0.05)
            .seed(seed)
            .build()
            .unwrap();
        // A dropped grant or rebalancing push destroys in-flight AV (the
        // sender withdrew, the receiver never saw it) — the protocol's
        // documented loss semantics. What must NEVER happen, no matter
        // how grants, timeouts, stragglers, and pushes interleave, is AV
        // creation: the system total may only fall below the conserved
        // amount, never rise above it. (The oracle inside `run` applies
        // the same rule.)
        let sys = run(cfg, &schedule(seed, SITES, PRODUCTS, 50));
        for p in 0..PRODUCTS {
            if let Err((expected, actual)) = sys.check_av_conservation(ProductId(p)) {
                assert!(
                    actual <= expected,
                    "seed {seed} product{p}: loss minted AV: expected {expected}, got {actual}"
                );
            }
        }
    }
}

#[test]
fn fanout_handles_extreme_volumes_without_overflow() {
    // i64-edge shortage shares: a huge decrement against a huge stock
    // forces partition_shortage and grant accounting through values far
    // beyond any realistic workload.
    let big = i64::MAX / 8;
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(big))
        .av_allocation(AvAllocation::AllAtBase)
        .shortage_fanout(2)
        .seed(7)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    let mut subs = Submissions::new();
    // A remote site asks for nearly half the system AV in one update.
    subs.submit_at(
        &mut sys,
        VirtualTime(0),
        UpdateRequest::new(SiteId(1), ProductId(0), Volume(-(big / 2))),
    );
    subs.submit_at(
        &mut sys,
        VirtualTime(10),
        UpdateRequest::new(SiteId(2), ProductId(0), Volume(-(big / 4))),
    );
    sys.run_until_quiescent();
    settle_sim(&mut sys);
    let outcomes = sys.drain_outcomes();
    assert_oracle_sim(&sys, subs, outcomes, "extreme-volume run conforms");
    if let Err((expected, actual)) = sys.check_av_conservation(ProductId(0)) {
        panic!("expected AV {expected}, got {actual}");
    }
}
