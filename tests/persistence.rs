//! Disk persistence across whole-system runs: each site's durable state
//! survives process death (persist → drop everything → reopen) and
//! reopened databases agree with the live run.

use avdb::prelude::*;
use avdb::storage::LocalDb;
use avdb::workload::{UpdateStream, WorkloadSpec};
use std::fs;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("avdb-sys-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn whole_system_state_survives_persist_and_reopen() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(5, Volume(400))
        .seed(17)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg.clone());
    let spec = WorkloadSpec { n_sites: 3, ..WorkloadSpec::paper(300, 17) };
    for (at, req) in UpdateStream::new(spec, &cfg.catalog) {
        sys.submit_at(at, req);
    }
    sys.run_until_quiescent();
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_convergence().unwrap();

    // Persist every site's durable state to its own directory.
    let root = tempdir("whole");
    for site in SiteId::all(3) {
        sys.accelerator(site)
            .db()
            .persist_to_dir(&root.join(format!("site{}", site.0)))
            .unwrap();
    }

    // "Process death": reopen from disk only and compare all stocks.
    for site in SiteId::all(3) {
        let (reopened, report) =
            LocalDb::open_from_dir(&root.join(format!("site{}", site.0))).unwrap();
        assert_eq!(report.undone_txns, 0, "quiescent system has no in-flight txns");
        for p in 0..5u32 {
            let product = ProductId(p);
            assert_eq!(
                reopened.stock(product).unwrap(),
                sys.stock(site, product),
                "{site} {product} diverged after reopen"
            );
        }
    }
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn checkpointed_system_reopens_from_small_logs() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(500))
        .seed(18)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    for i in 0..60u64 {
        let site = SiteId(1 + (i % 2) as u32);
        sys.submit_at(VirtualTime(i * 5), UpdateRequest::new(site, ProductId((i % 2) as u32), Volume(-3)));
    }
    sys.run_until_quiescent();
    sys.checkpoint_all();
    sys.run_until_quiescent();

    let root = tempdir("checkpointed");
    let dir = root.join("site1");
    sys.accelerator(SiteId(1)).db().persist_to_dir(&dir).unwrap();
    // The persisted WAL starts at the checkpoint — small and cheap.
    let wal_text = fs::read_to_string(dir.join(avdb::storage::persist::WAL_FILE)).unwrap();
    assert!(wal_text.lines().next().unwrap().contains("Checkpoint"));
    let (reopened, report) = LocalDb::open_from_dir(&dir).unwrap();
    assert!(report.from_checkpoint);
    assert_eq!(
        reopened.stock(ProductId(0)).unwrap(),
        sys.stock(SiteId(1), ProductId(0))
    );
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn trace_ids_survive_crash_recovery_and_rereplication() {
    // A site commits Delay updates locally (large batch keeps the deltas
    // buffered), fail-stops, recovers from its durable replication
    // buffer, and re-replicates. The re-sent deltas must carry the
    // *original* transaction ids and commit-span ids, so the remote
    // "apply" spans stitch into the pre-crash causal trees — no orphans,
    // no fresh trace ids.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(300))
        .propagation_batch(64)
        .seed(21)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    for i in 0..4u64 {
        sys.submit_at(VirtualTime(i), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-5)));
    }
    sys.crash_at(VirtualTime(10), SiteId(1));
    sys.recover_at(VirtualTime(30), SiteId(1));
    sys.run_until_quiescent();
    // Nothing propagated yet: the batch never filled and the crash hit
    // before any flush.
    assert_eq!(sys.stock(SiteId(0), ProductId(0)), sys.stock(SiteId(2), ProductId(0)));
    assert_ne!(sys.stock(SiteId(0), ProductId(0)), sys.stock(SiteId(1), ProductId(0)));
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_convergence().unwrap();
    assert!(sys.accelerator(SiteId(1)).stats().recoveries > 0);

    let outcomes = sys.drain_outcomes();
    let committed: Vec<_> =
        outcomes.iter().filter(|(_, _, o)| o.is_committed()).map(|(_, _, o)| o.txn()).collect();
    assert_eq!(committed.len(), 4);

    for txn in committed {
        // The origin recorded the commit span before the crash...
        let commit_span = sys
            .accelerator(SiteId(1))
            .spans()
            .records()
            .iter()
            .find(|r| r.trace == txn.0 && r.name == "commit")
            .expect("origin has a commit span")
            .span;
        // ...and every remote's post-recovery apply span points at it.
        for site in [SiteId(0), SiteId(2)] {
            let apply = sys
                .accelerator(site)
                .spans()
                .records()
                .iter()
                .find(|r| r.trace == txn.0 && r.name == "apply")
                .unwrap_or_else(|| panic!("{site} has an apply span for {txn}"));
            assert_eq!(apply.parent, commit_span, "{site} apply stitches to the commit");
        }
    }
    // The full oracle (including the new span-tree and registry
    // invariants) agrees.
    let submitted = (0..4u64)
        .map(|i| {
            avdb::oracle::SubmittedRequest::single(
                VirtualTime(i),
                &UpdateRequest::new(SiteId(1), ProductId(0), Volume(-5)),
            )
        })
        .collect();
    avdb::oracle::check(&avdb::oracle::Observation::from_system(&sys, submitted, outcomes))
        .assert_ok("crash re-replication trace survival");
}

#[test]
fn commit_spans_survive_disk_persist_and_reopen() {
    use avdb::core::Accelerator;

    // The WAL-backed variant of the same guarantee: the durable
    // propagation buffer serializes each pending delta's transaction id
    // (== trace id) and commit-span id, so a process death between commit
    // and propagation reopens with the exact causal linkage it had.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(300))
        .propagation_batch(64)
        .seed(23)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg.clone());
    for i in 0..5u64 {
        sys.submit_at(VirtualTime(i), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-2)));
    }
    sys.run_until_quiescent();

    let original: Vec<(u64, u64)> = sys
        .accelerator(SiteId(1))
        .replication_snapshot()
        .log
        .iter()
        .map(|d| (d.txn.0, d.commit_span))
        .collect();
    assert_eq!(original.len(), 5, "all five deltas still buffered");
    assert!(original.iter().all(|(_, span)| *span != 0), "every delta links its commit span");

    let root = tempdir("trace");
    let dir = root.join("site1");
    sys.accelerator(SiteId(1)).persist_to_dir(&dir).unwrap();
    let (reopened, _) = Accelerator::open_from_dir(&dir, &cfg).unwrap();
    let back: Vec<(u64, u64)> = reopened
        .replication_snapshot()
        .log
        .iter()
        .map(|d| (d.txn.0, d.commit_span))
        .collect();
    assert_eq!(original, back, "trace linkage survives the disk round-trip");
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn wal_truncated_mid_record_recovers_to_last_complete_record() {
    use avdb::core::Accelerator;
    use avdb::storage::persist::WAL_FILE;

    // A crash can cut the WAL's final line short of its newline; reopen
    // must treat the partial record as never written and come up at the
    // last complete record — not refuse to start.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(500))
        .seed(19)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg.clone());
    for i in 0..10u64 {
        sys.submit_at(VirtualTime(i * 5), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-4)));
    }
    sys.run_until_quiescent();
    sys.flush_all();
    sys.run_until_quiescent();

    let root = tempdir("truncated");
    let cut = root.join("cut"); // crash-truncated mid-record
    let full = root.join("full"); // ground truth: final record dropped whole
    let bad = root.join("bad"); // contrast: real corruption, must still fail
    for dir in [&cut, &full, &bad] {
        sys.accelerator(SiteId(1)).persist_to_dir(dir).unwrap();
    }

    let wal = fs::read_to_string(cut.join(WAL_FILE)).unwrap();
    let lines: Vec<&str> = wal.lines().collect();
    assert!(lines.len() >= 2, "need at least two records to truncate one");
    let (head, last) = (&lines[..lines.len() - 1], lines[lines.len() - 1]);
    let mut complete_prefix = head.join("\n");
    complete_prefix.push('\n');
    // The tampered tail: the final record's first half, no newline.
    let mut truncated = complete_prefix.clone();
    truncated.push_str(&last[..last.len() / 2]);
    fs::write(cut.join(WAL_FILE), &truncated).unwrap();
    fs::write(full.join(WAL_FILE), &complete_prefix).unwrap();

    let (from_cut, cut_report) = Accelerator::open_from_dir(&cut, &cfg).unwrap();
    let (from_full, full_report) = Accelerator::open_from_dir(&full, &cfg).unwrap();
    assert_eq!(
        from_cut.db().stock(ProductId(0)).unwrap(),
        from_full.db().stock(ProductId(0)).unwrap(),
        "truncated reopen must land exactly on the last complete record"
    );
    assert_eq!(cut_report.undone_txns, full_report.undone_txns);

    // A garbage line that IS newline-terminated was durably written, so
    // it is corruption, not a crash artifact — reopen must refuse.
    let mut corrupt = complete_prefix;
    corrupt.push_str("this is not a log record\n");
    fs::write(bad.join(WAL_FILE), &corrupt).unwrap();
    assert!(Accelerator::open_from_dir(&bad, &cfg).is_err());
    fs::remove_dir_all(&root).unwrap();
}
