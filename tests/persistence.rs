//! Disk persistence across whole-system runs: each site's durable state
//! survives process death (persist → drop everything → reopen) and
//! reopened databases agree with the live run.

use avdb::prelude::*;
use avdb::storage::LocalDb;
use avdb::workload::{UpdateStream, WorkloadSpec};
use std::fs;
use std::path::PathBuf;

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("avdb-sys-persist-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn whole_system_state_survives_persist_and_reopen() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(5, Volume(400))
        .seed(17)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg.clone());
    let spec = WorkloadSpec { n_sites: 3, ..WorkloadSpec::paper(300, 17) };
    for (at, req) in UpdateStream::new(spec, &cfg.catalog) {
        sys.submit_at(at, req);
    }
    sys.run_until_quiescent();
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_convergence().unwrap();

    // Persist every site's durable state to its own directory.
    let root = tempdir("whole");
    for site in SiteId::all(3) {
        sys.accelerator(site)
            .db()
            .persist_to_dir(&root.join(format!("site{}", site.0)))
            .unwrap();
    }

    // "Process death": reopen from disk only and compare all stocks.
    for site in SiteId::all(3) {
        let (reopened, report) =
            LocalDb::open_from_dir(&root.join(format!("site{}", site.0))).unwrap();
        assert_eq!(report.undone_txns, 0, "quiescent system has no in-flight txns");
        for p in 0..5u32 {
            let product = ProductId(p);
            assert_eq!(
                reopened.stock(product).unwrap(),
                sys.stock(site, product),
                "{site} {product} diverged after reopen"
            );
        }
    }
    fs::remove_dir_all(&root).unwrap();
}

#[test]
fn checkpointed_system_reopens_from_small_logs() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(500))
        .seed(18)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    for i in 0..60u64 {
        let site = SiteId(1 + (i % 2) as u32);
        sys.submit_at(VirtualTime(i * 5), UpdateRequest::new(site, ProductId((i % 2) as u32), Volume(-3)));
    }
    sys.run_until_quiescent();
    sys.checkpoint_all();
    sys.run_until_quiescent();

    let root = tempdir("checkpointed");
    let dir = root.join("site1");
    sys.accelerator(SiteId(1)).db().persist_to_dir(&dir).unwrap();
    // The persisted WAL starts at the checkpoint — small and cheap.
    let wal_text = fs::read_to_string(dir.join(avdb::storage::persist::WAL_FILE)).unwrap();
    assert!(wal_text.lines().next().unwrap().contains("Checkpoint"));
    let (reopened, report) = LocalDb::open_from_dir(&dir).unwrap();
    assert!(report.from_checkpoint);
    assert_eq!(
        reopened.stock(ProductId(0)).unwrap(),
        sys.stock(SiteId(1), ProductId(0))
    );
    fs::remove_dir_all(&root).unwrap();
}
