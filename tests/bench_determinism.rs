//! Determinism suite for the benchmark harness: the same spec (same
//! seed, same matrix cell) must produce a byte-identical
//! [`BenchReport::deterministic_json`] — the report with every
//! wall-clock field zeroed — across repeated runs. This is what lets a
//! committed `BENCH_baseline.json` act as a cross-machine regression
//! gate: any diff in the deterministic half is a behavior change, not
//! noise.

use avdb::bench::{run_scenario, BenchReport, FaultProfile, ScenarioSpec, TransportKind};

/// Runs one scenario and returns its wall-clock-free report JSON.
fn det_json(spec: &ScenarioSpec) -> String {
    let art = run_scenario(spec).unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
    BenchReport { label: "determinism".to_string(), scenarios: vec![art.result] }
        .deterministic_json()
}

#[test]
fn sim_report_is_byte_identical_across_runs() {
    let mut spec = ScenarioSpec::base();
    spec.sites = 5;
    spec.updates = 200;
    spec.zipf_milli = 900;
    spec.seed = 11;
    let first = det_json(&spec);
    assert!(first.contains("commits_per_mtick"), "sim stats present");
    assert_eq!(first, det_json(&spec), "same seed, same spec, same bytes");
}

#[test]
fn sim_report_under_message_loss_is_byte_identical() {
    // Faults are drawn from the seeded simulator RNG, so even a lossy
    // run replays exactly.
    let mut spec = ScenarioSpec::base();
    spec.updates = 150;
    spec.fault = FaultProfile::Loss;
    spec.seed = 7;
    assert_eq!(det_json(&spec), det_json(&spec));
}

#[test]
fn distinct_seeds_actually_change_the_report() {
    // Guard against the trap of a "deterministic" report that is
    // insensitive to the run: different seeds must diverge.
    let mut a = ScenarioSpec::base();
    a.updates = 200;
    a.zipf_milli = 900;
    a.seed = 11;
    let mut b = a.clone();
    b.seed = 12;
    assert_ne!(det_json(&a), det_json(&b));
}

#[test]
fn threads_closed_loop_protocol_stats_are_byte_identical() {
    // On a live transport wall-clock numbers differ run to run, but the
    // closed loop (one update in flight) makes the *protocol* counters
    // scheduling-independent — as long as the workload stays clear of
    // AV shortages, whose grant timeouts race real time. Plentiful
    // stock keeps every Delay Update locally covered.
    let mut spec = ScenarioSpec::base();
    spec.transport = TransportKind::Threads;
    spec.updates = 24;
    spec.initial_stock = 200_000;
    spec.retailer_pct = 1;
    spec.seed = 5;
    let first = det_json(&spec);
    assert!(!first.contains("commits_per_mtick"), "no sim stats on a live run");
    assert_eq!(first, det_json(&spec), "closed-loop live stats replay exactly");
}
