//! Cross-transport causal-tracing acceptance: the same protocol code runs
//! under the deterministic simulator, the thread mesh, and the TCP mesh,
//! and on every one of them each committed update must leave a complete
//! span tree (rooted, no orphans) whose *shape* — the phases recorded
//! across all sites — is transport-independent.

mod common;

use avdb::core::Accelerator;
use avdb::prelude::*;
use avdb::simnet::{DetRng, LiveRunner, TcpMesh};
use avdb::telemetry::analyze::verify;
use avdb::telemetry::RunExport;
use std::collections::BTreeSet;

const SITES: usize = 4;
const REQUESTS: usize = 24;

fn config(seed: u64) -> SystemConfig {
    SystemConfig::builder()
        .sites(SITES)
        // Ample AV: Delay traffic commits locally, so both paths appear
        // without AV-negotiation rounds (whose count is timing-sensitive
        // on the live transports).
        .regular_products(2, Volume(400))
        .non_regular_products(1, Volume(60))
        .seed(seed)
        .build()
        .unwrap()
}

fn requests(cfg: &SystemConfig) -> Vec<UpdateRequest> {
    let mut rng = DetRng::new(cfg.seed).derive(0x517C);
    (0..REQUESTS)
        .map(|_| {
            let site = SiteId(rng.gen_range(SITES as u64) as u32);
            let product = ProductId(rng.gen_range(3) as u32);
            UpdateRequest::new(site, product, Volume(-rng.gen_i64_inclusive(1, 6)))
        })
        .collect()
}

fn actors(cfg: &SystemConfig) -> Vec<Accelerator> {
    SiteId::all(cfg.n_sites).map(|s| Accelerator::new(s, cfg)).collect()
}

fn committed_txns(export: &RunExport) -> BTreeSet<u64> {
    export.outcomes.iter().filter(|o| o.committed).map(|o| o.txn).collect()
}

/// Asserts the acceptance criteria on one export: every committed update
/// has a rooted, orphan-free span tree, and the sites' own send counters
/// total exactly what the network substrate carried.
fn assert_complete(export: &RunExport, context: &str) {
    let report = verify(export);
    assert!(report.is_ok(), "{context}: {report}");
    assert!(report.committed > 0, "{context}: no committed updates to verify");
    let registry_sends: u64 = export
        .registries
        .iter()
        .filter(|r| r.scope.starts_with("site"))
        .map(|r| r.snapshot.counter_sum("msg.sent."))
        .sum();
    let network = export.registry("network").expect("network registry present");
    assert_eq!(
        registry_sends,
        network.counter("msg.total"),
        "{context}: registry and network message totals disagree"
    );
}

#[test]
fn every_transport_produces_complete_span_trees() {
    let cfg = config(41);
    let reqs = requests(&cfg);
    let timed: Vec<_> = reqs
        .iter()
        .enumerate()
        .map(|(i, r)| (VirtualTime(i as u64 * 4), *r))
        .collect();

    assert_complete(&common::export_sim(&cfg, &timed), "sim");
    assert_complete(
        &common::export_live("threads", &cfg, LiveRunner::spawn(actors(&cfg), cfg.seed), &reqs),
        "threads",
    );
    assert_complete(
        &common::export_live("tcp", &cfg, TcpMesh::spawn(actors(&cfg), cfg.seed), &reqs),
        "tcp",
    );
}

#[test]
fn tcp_spans_stitch_into_the_same_trees_as_sim_spans() {
    let cfg = config(42);
    let reqs = requests(&cfg);
    let timed: Vec<_> = reqs
        .iter()
        .enumerate()
        .map(|(i, r)| (VirtualTime(i as u64 * 4), *r))
        .collect();

    let sim = common::export_sim(&cfg, &timed);
    let tcp = common::export_live("tcp", &cfg, TcpMesh::spawn(actors(&cfg), cfg.seed), &reqs);
    assert!(verify(&sim).is_ok());
    assert!(verify(&tcp).is_ok());

    // Same seed → same transaction (= trace) ids. Span ids and timestamps
    // are scheduling artifacts, but for every update committed on both
    // transports the causal tree must contain the same phases.
    let both: Vec<u64> =
        committed_txns(&sim).intersection(&committed_txns(&tcp)).copied().collect();
    assert!(
        both.len() >= REQUESTS / 2,
        "expected most updates to commit on both transports, got {}",
        both.len()
    );
    let sim_shapes = common::trace_shapes(&sim);
    let tcp_shapes = common::trace_shapes(&tcp);
    for txn in both {
        assert_eq!(
            sim_shapes.get(&txn),
            tcp_shapes.get(&txn),
            "trace {txn:#x} has different causal shapes on sim vs tcp"
        );
    }
}
