//! System-level property tests: random workloads, random topologies,
//! random crash schedules — the core invariants must hold for all of
//! them.
//!
//! These run whole simulations per case, so case counts are kept modest;
//! they still explore far more interleavings than any hand-written test.

use avdb::prelude::*;
use avdb::types::request::AbortReason;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct RandomUpdate {
    site: u32,
    product: u32,
    delta: i64,
    gap: u64,
}

fn update_strategy(n_sites: u32, n_products: u32) -> impl Strategy<Value = RandomUpdate> {
    (0..n_sites, 0..n_products, -60i64..60, 0u64..12).prop_map(
        |(site, product, delta, gap)| RandomUpdate {
            site,
            product,
            delta: if delta == 0 { 1 } else { delta },
            gap,
        },
    )
}

#[derive(Clone, Debug)]
struct CrashPlan {
    victim: u32,
    crash_frac: f64,
    outage_frac: f64,
}

fn crash_strategy(n_sites: u32) -> impl Strategy<Value = Option<CrashPlan>> {
    prop_oneof![
        2 => Just(None),
        3 => (0..n_sites, 0.1f64..0.6, 0.1f64..0.3)
            .prop_map(|(victim, crash_frac, outage_frac)| Some(CrashPlan {
                victim,
                crash_frac,
                outage_frac,
            })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any workload and any single crash/recovery, after quiescence +
    /// anti-entropy: (1) replicas converge, (2) AV is conserved,
    /// (3) converged stock never goes negative, (4) every update at a
    /// live site resolves exactly once.
    #[test]
    fn prop_invariants_under_random_load_and_crashes(
        n_sites in 2u32..6,
        n_products in 1u32..4,
        seed in 0u64..1_000,
        updates in prop::collection::vec(update_strategy(6, 4), 1..80),
        crash in crash_strategy(6),
    ) {
        let cfg = SystemConfig::builder()
            .sites(n_sites as usize)
            .regular_products(n_products as usize, Volume(150))
            .seed(seed)
            .build()
            .unwrap();
        let mut sys = DistributedSystem::new(cfg);
        let mut t = 0u64;
        let mut injected = 0u64;
        for u in &updates {
            t += u.gap;
            let site = SiteId(u.site % n_sites);
            let product = ProductId(u.product % n_products);
            sys.submit_at(VirtualTime(t), UpdateRequest::new(site, product, Volume(u.delta)));
            injected += 1;
        }
        if let Some(plan) = &crash {
            let victim = SiteId(plan.victim % n_sites);
            let crash_at = (t as f64 * plan.crash_frac) as u64;
            let recover_at = crash_at + ((t as f64 * plan.outage_frac) as u64).max(1);
            sys.crash_at(VirtualTime(crash_at), victim);
            sys.recover_at(VirtualTime(recover_at), victim);
        }
        sys.run_until_quiescent();
        sys.flush_all();
        sys.run_until_quiescent();
        sys.flush_all();
        sys.run_until_quiescent();

        // (1) convergence
        prop_assert!(sys.check_convergence().is_ok(), "{:?}", sys.check_convergence());
        // (2) AV conservation per product
        for p in 0..n_products {
            let product = ProductId(p);
            if let Err((e, a)) = sys.check_av_conservation(product) {
                return Err(TestCaseError::fail(format!(
                    "conservation of {product}: expected {e}, actual {a}"
                )));
            }
            // (3) escrow safety on the converged value (initial AV ==
            // initial stock, so committed stock can never go negative).
            prop_assert!(sys.stock(SiteId::BASE, product) >= Volume::ZERO);
        }
        // (4) exactly one outcome per update, except those lost to the
        // fail-stop model: inputs at a dead site, and negotiations whose
        // origin crashed mid-flight.
        let outcomes = sys.drain_outcomes();
        let wiped: u64 = (0..n_sites)
            .map(|s| sys.accelerator(SiteId(s)).stats().wiped_in_flight)
            .sum();
        prop_assert_eq!(
            outcomes.len() as u64 + sys.lost_inputs() + wiped,
            injected,
            "outcomes + lost + wiped must cover all injected updates"
        );
        let mut txns: Vec<_> = outcomes.iter().map(|(_, _, o)| o.txn()).collect();
        txns.sort();
        txns.dedup();
        prop_assert_eq!(txns.len(), outcomes.len(), "no duplicate outcomes");
        // All protocol state drained.
        prop_assert!(sys.all_idle());
    }

    /// Aborted updates must leave no trace: a workload of doomed
    /// decrements (larger than system AV) leaves stock and AV exactly at
    /// their initial values.
    #[test]
    fn prop_aborts_are_traceless(
        seed in 0u64..1_000,
        n in 1usize..20,
    ) {
        let cfg = SystemConfig::builder()
            .sites(3)
            .regular_products(1, Volume(50))
            .seed(seed)
            .build()
            .unwrap();
        let mut sys = DistributedSystem::new(cfg);
        for i in 0..n {
            let site = SiteId(1 + (i % 2) as u32);
            // 51 > system AV of 50 → must abort.
            sys.submit_at(
                VirtualTime((i * 7) as u64),
                UpdateRequest::new(site, ProductId(0), Volume(-51)),
            );
        }
        sys.run_until_quiescent();
        let outcomes = sys.drain_outcomes();
        prop_assert_eq!(outcomes.len(), n);
        for (_, _, o) in &outcomes {
            match o {
                UpdateOutcome::Aborted { reason: AbortReason::InsufficientAv { .. }, .. } => {}
                other => return Err(TestCaseError::fail(format!("expected AV abort: {other:?}"))),
            }
        }
        sys.flush_all();
        sys.run_until_quiescent();
        prop_assert!(sys.check_convergence().is_ok());
        prop_assert_eq!(sys.stock(SiteId::BASE, ProductId(0)), Volume(50));
        prop_assert_eq!(sys.av_system_total(ProductId(0)), Volume(50));
    }

    /// The proposal never loses to the conventional baseline on pure
    /// Delay workloads, for any seed.
    #[test]
    fn prop_proposal_wins_on_delay_workloads(seed in 0u64..500) {
        use avdb::sim::{run_conventional, run_proposal, paper_scenario};
        let (cfg, spec) = paper_scenario(240, seed);
        let p = run_proposal(&cfg, &spec);
        let c = run_conventional(&cfg, &spec);
        prop_assert!(
            p.metrics.total_correspondences() < c.metrics.total_correspondences(),
            "seed {seed}: proposal {} vs conventional {}",
            p.metrics.total_correspondences(),
            c.metrics.total_correspondences()
        );
    }
}
