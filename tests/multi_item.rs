//! Multi-item Delay transactions: several `(product, delta)` pairs commit
//! atomically under AV holds, without any locking — an extension the
//! paper's "whole transaction" language implies (§3.3: "it is not
//! necessary to lock the AV exclusively until the completion of whole
//! transaction").

use avdb::prelude::*;
use avdb::types::request::AbortReason;

fn system() -> DistributedSystem {
    DistributedSystem::new(
        SystemConfig::builder()
            .sites(3)
            .regular_products(3, Volume(90)) // 30 AV per site per product
            .non_regular_products(1, Volume(30))
            .seed(4)
            .build()
            .unwrap(),
    )
}

const A: ProductId = ProductId(0);
const B: ProductId = ProductId(1);
const C: ProductId = ProductId(2);
const NONREG: ProductId = ProductId(3);

#[test]
fn covered_multi_update_commits_locally_with_zero_messages() {
    let mut sys = system();
    sys.submit_multi_at(
        VirtualTime(0),
        SiteId(1),
        vec![(A, Volume(-10)), (B, Volume(-20)), (C, Volume(5))],
    );
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    assert_eq!(outcomes.len(), 1, "one outcome for the whole transaction");
    match &outcomes[0].2 {
        UpdateOutcome::Committed { kind: UpdateKind::Delay, correspondences: 0, .. } => {}
        other => panic!("expected free Delay commit, got {other:?}"),
    }
    assert_eq!(sys.stock(SiteId(1), A), Volume(80));
    assert_eq!(sys.stock(SiteId(1), B), Volume(70));
    assert_eq!(sys.stock(SiteId(1), C), Volume(95));
    // The increment minted AV.
    assert_eq!(sys.av_available(SiteId(1), C), Volume(35));
    assert_eq!(sys.counters().by_kind("av-request"), 0);
}

#[test]
fn multi_update_negotiates_av_per_item() {
    let mut sys = system();
    // Site 2 holds 30 per product; both items exceed it, so each product
    // needs its own transfer round.
    sys.submit_multi_at(VirtualTime(0), SiteId(2), vec![(A, Volume(-40)), (B, Volume(-45))]);
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    assert_eq!(outcomes.len(), 1);
    match &outcomes[0].2 {
        UpdateOutcome::Committed { kind: UpdateKind::Delay, correspondences, .. } => {
            assert!(*correspondences >= 2, "one request per short product, got {correspondences}");
        }
        other => panic!("expected commit, got {other:?}"),
    }
    assert_eq!(sys.stock(SiteId(2), A), Volume(50));
    assert_eq!(sys.stock(SiteId(2), B), Volume(45));
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_convergence().unwrap();
    sys.check_av_conservation(A).unwrap();
    sys.check_av_conservation(B).unwrap();
}

#[test]
fn multi_update_is_atomic_on_failure() {
    let mut sys = system();
    // Item A is easily covered; item B demands more than the system-wide
    // 90 — the whole transaction must abort with A untouched.
    sys.submit_multi_at(VirtualTime(0), SiteId(1), vec![(A, Volume(-10)), (B, Volume(-200))]);
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    assert_eq!(outcomes.len(), 1);
    match &outcomes[0].2 {
        UpdateOutcome::Aborted { reason: AbortReason::InsufficientAv { .. }, .. } => {}
        other => panic!("expected AV abort, got {other:?}"),
    }
    for p in [A, B, C] {
        for s in SiteId::all(3) {
            assert_eq!(sys.stock(s, p), Volume(90), "no partial effects");
        }
    }
    // Gathered AV for B stays at site 1 ("stored in the local AV table"),
    // and A's released hold is back too — conservation holds.
    sys.check_av_conservation(A).unwrap();
    sys.check_av_conservation(B).unwrap();
    assert!(sys.av_available(SiteId(1), B) > Volume(30));
    assert!(sys.all_idle());
}

#[test]
fn multi_update_rejects_non_delay_products() {
    let mut sys = system();
    sys.submit_multi_at(VirtualTime(0), SiteId(1), vec![(A, Volume(-5)), (NONREG, Volume(-5))]);
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    match &outcomes[0].2 {
        UpdateOutcome::Aborted { reason: AbortReason::NotDelayEligible, correspondences: 0, .. } => {}
        other => panic!("expected NotDelayEligible, got {other:?}"),
    }
    assert_eq!(sys.stock(SiteId(1), A), Volume(90));
    assert_eq!(sys.counters().total_messages(), 0);
}

#[test]
fn empty_multi_update_rejected() {
    let mut sys = system();
    sys.submit_multi_at(VirtualTime(0), SiteId(1), vec![]);
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    assert!(matches!(
        outcomes[0].2,
        UpdateOutcome::Aborted { reason: AbortReason::NotDelayEligible, .. }
    ));
}

#[test]
fn repeated_items_for_same_product_accumulate() {
    let mut sys = system();
    // Two decrements of the same product within one transaction: holds
    // accumulate per (txn, product), so the combined need is honoured.
    sys.submit_multi_at(VirtualTime(0), SiteId(1), vec![(A, Volume(-15)), (A, Volume(-10))]);
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    assert!(outcomes[0].2.is_committed());
    assert_eq!(sys.stock(SiteId(1), A), Volume(65));
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_av_conservation(A).unwrap();
}

#[test]
fn concurrent_multi_updates_share_av_without_locks() {
    let mut sys = system();
    // Both retailers run multi-item transactions over the same products
    // at the same instant; non-exclusive holds let both proceed.
    sys.submit_multi_at(VirtualTime(0), SiteId(1), vec![(A, Volume(-12)), (B, Volume(-12))]);
    sys.submit_multi_at(VirtualTime(0), SiteId(2), vec![(A, Volume(-12)), (B, Volume(-12))]);
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    assert_eq!(outcomes.iter().filter(|(_, _, o)| o.is_committed()).count(), 2);
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_convergence().unwrap();
    assert_eq!(sys.stock(SiteId(0), A), Volume(66));
    assert_eq!(sys.stock(SiteId(0), B), Volume(66));
}

mod multi_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// Random batches of multi-item transactions from random sites:
        /// after convergence the state equals initial + the sum of the
        /// committed transactions' net deltas, and AV is conserved.
        #[test]
        fn prop_multi_item_atomicity_and_conservation(
            seed in 0u64..500,
            txns in prop::collection::vec(
                (1u32..3, prop::collection::vec((0u32..3, -40i64..40), 1..4)),
                1..25,
            ),
        ) {
            let mut sys = DistributedSystem::new(
                SystemConfig::builder()
                    .sites(3)
                    .regular_products(3, Volume(200))
                    .seed(seed)
                    .build()
                    .unwrap(),
            );
            for (i, (site, items)) in txns.iter().enumerate() {
                let items: Vec<(ProductId, Volume)> = items
                    .iter()
                    .map(|(p, d)| (ProductId(*p), Volume(if *d == 0 { 1 } else { *d })))
                    .collect();
                sys.submit_multi_at(VirtualTime((i * 9) as u64), SiteId(*site), items);
            }
            sys.run_until_quiescent();
            sys.flush_all();
            sys.run_until_quiescent();
            prop_assert!(sys.check_convergence().is_ok());
            let outcomes = sys.drain_outcomes();
            prop_assert_eq!(outcomes.len(), txns.len());
            // Replay the committed transactions against a model.
            let mut model = [200i64; 3];
            for ((_, _, outcome), (_, items)) in outcomes.iter().zip(&txns) {
                if outcome.is_committed() {
                    for (p, d) in items {
                        model[*p as usize] += if *d == 0 { 1 } else { *d };
                    }
                }
            }
            for p in 0..3u32 {
                prop_assert_eq!(
                    sys.stock(SiteId::BASE, ProductId(p)).get(),
                    model[p as usize],
                    "committed-only model mismatch on product{}", p
                );
                prop_assert!(sys.check_av_conservation(ProductId(p)).is_ok());
            }
        }
    }
}
