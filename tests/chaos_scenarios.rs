//! End-to-end checks of the chaos scenario library: every named scenario
//! runs oracle-clean, replays bit-identically from its seed, and —
//! for the targeted nemeses — demonstrably strikes mid-protocol while
//! the run still converges with AV strictly conserved.

use avdb::bench::{run_scenario, ScenarioSpec};
use avdb::chaos::{run_case, ChaosCase, Scenario};

fn case(scenario: Scenario, seed: u64) -> ChaosCase {
    ChaosCase { scenario, n_sites: 3, updates: 40, seed }
}

/// A small bench cell running `scenario` on the simulator. Kill-the-granter
/// needs grant traffic to strike, so that cell pools all AV at the base
/// site — the same shape `chaos::ChaosCase` uses.
fn bench_spec(scenario: Scenario) -> ScenarioSpec {
    let mut spec = ScenarioSpec::base();
    spec.updates = 60;
    spec.scenario = Some(scenario.name().to_string());
    if scenario == Scenario::KillTheGranter {
        spec.allocation = avdb::types::AvAllocation::AllAtBase;
    }
    spec
}

#[test]
fn every_scenario_runs_oracle_clean() {
    for scenario in Scenario::ALL {
        for seed in [1, 9] {
            let verdict = run_case(&case(scenario, seed), 40);
            assert!(
                verdict.report.is_ok(),
                "{scenario} seed {seed} violated the oracle:\n{}",
                verdict.report
            );
        }
    }
}

#[test]
fn every_scenario_is_deterministic_per_seed() {
    // Same seed + same scenario ⇒ byte-identical deterministic JSON and
    // the same oracle verdict, across two fully independent runs.
    for scenario in Scenario::ALL {
        let spec = bench_spec(scenario);
        let a = run_scenario(&spec).unwrap_or_else(|e| panic!("{scenario} run A: {e}"));
        let b = run_scenario(&spec).unwrap_or_else(|e| panic!("{scenario} run B: {e}"));
        let report_a = avdb::bench::BenchReport {
            label: "det".into(),
            scenarios: vec![a.result],
        };
        let report_b = avdb::bench::BenchReport {
            label: "det".into(),
            scenarios: vec![b.result],
        };
        assert_eq!(
            report_a.deterministic_json(),
            report_b.deterministic_json(),
            "{scenario} must replay bit-identically from its seed"
        );
    }
}

#[test]
fn chaos_runner_is_deterministic_per_seed() {
    // The avdb-check sweep path too: identical verdict, counters, and
    // nemesis strikes across two runs of the same case.
    for scenario in Scenario::ALL {
        let a = run_case(&case(scenario, 3), 40);
        let b = run_case(&case(scenario, 3), 40);
        assert_eq!(a.report.is_ok(), b.report.is_ok(), "{scenario} verdict must replay");
        assert_eq!(a.fired, b.fired, "{scenario} strike count must replay");
        assert_eq!(a.committed, b.committed, "{scenario} commit count must replay");
        assert_eq!(
            a.observation.network, b.observation.network,
            "{scenario} network counters must replay"
        );
    }
}

#[test]
fn targeted_nemeses_fire_mid_protocol_and_conserve_av() {
    for scenario in [Scenario::KillTheGranter, Scenario::KillTheCoordinator] {
        let verdict = run_case(&case(scenario, 3), 40);
        // The nemesis-coverage gate: a refactor that silently stops the
        // trigger fails here rather than passing vacuously.
        assert!(verdict.fired > 0, "{scenario} never fired — vacuous run");
        assert!(
            verdict.chaos_registry.counter(&format!("chaos.nemesis.fired.{scenario}")) > 0,
            "{scenario} per-nemesis counter missing"
        );
        assert!(
            verdict.report.is_ok(),
            "{scenario} violated the oracle:\n{}",
            verdict.report
        );
        // Kill nemeses crash sites (messages park, nothing is dropped),
        // so the oracle's AV-conservation check ran in strict mode.
        assert_eq!(
            verdict.observation.network.dropped_messages, 0,
            "{scenario} must not drop messages — conservation stays strict"
        );
        assert!(verdict.committed > 0, "{scenario} runs must still make progress");
    }
}

#[test]
fn targeted_bench_cells_refuse_vacuous_runs() {
    // Under uniform allocation every site already holds enough AV, no
    // shortage arises, and no av-grant ever flows — the nemesis has
    // nothing to strike. The bench must fail the cell rather than
    // publish adversary-free numbers under an adversarial label.
    let mut spec = bench_spec(Scenario::KillTheGranter);
    spec.allocation = avdb::types::AvAllocation::Uniform;
    match run_scenario(&spec) {
        Err(e) => assert!(e.contains("never fired"), "unexpected error: {e}"),
        Ok(arts) => panic!(
            "expected the vacuous cell to fail, got ok ({} committed)",
            arts.result.stats.committed
        ),
    }
}

#[test]
fn coordinator_crash_after_decision_still_reports_the_commit() {
    // Found by the first `--scenario all` sweep: at 5 sites, seed 8, a
    // rolling restart takes the coordinator down in the window between
    // deciding an Immediate commit (durable, distributed, executed at
    // every site) and reporting the outcome. The commit must be
    // re-reported at recovery, or the oracle sees a phantom write —
    // replicas converge on a value the committed outcomes can't explain.
    let case =
        ChaosCase { scenario: Scenario::RollingRestart, n_sites: 5, updates: 40, seed: 8 };
    let verdict = run_case(&case, 18);
    assert!(
        verdict.report.is_ok(),
        "decided-but-unreported commit was lost again:\n{}",
        verdict.report
    );
    assert!(verdict.committed > 0);
}

#[test]
fn scenario_labels_are_stable_and_distinct() {
    let mut labels = std::collections::BTreeSet::new();
    for scenario in Scenario::ALL {
        let label = bench_spec(scenario).label();
        assert!(
            label.ends_with(&format!("-sc{scenario}")),
            "scenario label suffix missing: {label}"
        );
        labels.insert(label);
    }
    assert_eq!(labels.len(), Scenario::ALL.len());
    assert!(
        !ScenarioSpec::base().label().contains("-sc"),
        "plain cells keep their pre-chaos labels"
    );
}
