//! Gateway torture suite: pipelining correctness and seed-stable
//! determinism, admission control, in-flight-window backpressure,
//! slow-client shedding, and wire-level abuse (garbage headers, unknown
//! kinds, mid-frame disconnects) — all against a live TCP cluster, with
//! the conformance oracle auditing every update that made it in.

use avdb::client::Connection;
use avdb::core::{Accelerator, Input};
use avdb::gateway::{Gateway, GatewayConfig};
use avdb::oracle::Observation;
use avdb::prelude::*;
use avdb::simnet::TcpMesh;
use avdb::wire::{
    encode_request, Decoder, ErrorCode, Request, Response, MAGIC, VERSION,
};
use bytes::BytesMut;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---- harness --------------------------------------------------------------

/// A live 3-site cluster with a gateway in front of it.
struct Cluster {
    cfg: SystemConfig,
    mesh: Arc<TcpMesh<Accelerator>>,
    gateway: Gateway,
}

/// Boots `sites` accelerators (4 Delay products, 1 Immediate product)
/// behind a gateway with the given knobs.
fn boot(sites: usize, seed: u64, gw: GatewayConfig) -> Cluster {
    let cfg = SystemConfig::builder()
        .sites(sites)
        .regular_products(4, Volume(9_000))
        .non_regular_products(1, Volume(9_000))
        .seed(seed)
        .build()
        .expect("config");
    let actors: Vec<Accelerator> =
        SiteId::all(sites).map(|s| Accelerator::new(s, &cfg)).collect();
    let (mesh, _http) = TcpMesh::spawn_with_http(actors, seed);
    let mesh = Arc::new(mesh);
    let gateway = Gateway::spawn(Arc::clone(&mesh), sites, gw);
    Cluster { cfg, mesh, gateway }
}

impl Cluster {
    fn addr(&self, site: usize) -> SocketAddr {
        self.gateway.addrs()[site]
    }

    /// Waits for every accepted update's outcome, settles replication,
    /// shuts everything down, and runs the conformance oracle.
    fn finish_checked(self, context: &str) {
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.gateway.outcome_count() < self.gateway.stats().updates {
            assert!(Instant::now() < deadline, "{context}: outcomes never drained");
            std::thread::sleep(Duration::from_millis(2));
        }
        let n_sites = self.cfg.n_sites;
        for _ in 0..3 {
            for site in SiteId::all(n_sites) {
                self.mesh.inject(site, Input::FlushPropagation);
            }
            std::thread::sleep(Duration::from_millis(50));
        }
        let (submissions, mut outcomes, _stats) = self.gateway.finish();
        // Retired connection threads release their mesh handle
        // asynchronously; wait for the last clone to drop.
        let mut arc = self.mesh;
        let mesh = loop {
            match Arc::try_unwrap(arc) {
                Ok(mesh) => break mesh,
                Err(still_shared) => {
                    assert!(Instant::now() < deadline, "{context}: mesh never released");
                    std::thread::sleep(Duration::from_millis(2));
                    arc = still_shared;
                }
            }
        };
        let (actors, counters, leftovers) = mesh.shutdown();
        outcomes.extend(leftovers);
        avdb::oracle::check(&Observation::from_accelerators(
            self.cfg,
            &actors,
            submissions,
            outcomes,
            counters.snapshot(),
        ))
        .assert_ok(context);
    }
}

/// Writes one update frame to a raw socket.
fn raw_update(stream: &mut TcpStream, req_id: u64, product: u32, delta: i64) {
    let mut buf = BytesMut::new();
    encode_request(req_id, &Request::Update { product, delta }, &mut buf);
    stream.write_all(&buf).expect("write update frame");
}

/// Reads response frames from a raw socket until `n` arrived, EOF, or
/// the deadline — whichever first. Returns them in arrival order.
fn raw_responses(stream: &mut TcpStream, n: usize, deadline: Duration) -> Vec<(u64, Response)> {
    stream
        .set_read_timeout(Some(Duration::from_millis(200)))
        .expect("read timeout");
    let end = Instant::now() + deadline;
    let mut dec = Decoder::new();
    let mut got = Vec::new();
    let mut chunk = [0u8; 4096];
    while got.len() < n && Instant::now() < end {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(read) => {
                dec.extend(&chunk[..read]);
                while let Ok(Some(frame)) = dec.next_response() {
                    got.push(frame);
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => break,
        }
    }
    got
}

// ---- pipelining -----------------------------------------------------------

/// Drives one pipelined connection and returns (arrival order of request
/// ids, canonical transcript keyed by request id).
fn pipelined_run(seed: u64) -> (Vec<u64>, String) {
    let cluster = boot(3, seed, GatewayConfig::default());
    let mut stream = TcpStream::connect(cluster.addr(1)).expect("connect site 1");
    stream.set_nodelay(true).expect("nodelay");

    // Request 100: a shortage-path Delay update — site 1's local AV
    // share (9000/3 = 3000) cannot cover -4000, so the accelerator must
    // gather AV from its peers over several round trips. Requests
    // 101..=147: small local Delay commits that complete instantly.
    // Pipelining means the small ones overtake the shortage update.
    raw_update(&mut stream, 100, 0, -4_000);
    for i in 0..47u64 {
        raw_update(&mut stream, 101 + i, 1 + (i % 3) as u32, -(1 + (i % 3) as i64));
    }
    let got = raw_responses(&mut stream, 48, Duration::from_secs(20));
    assert_eq!(got.len(), 48, "every pipelined request must be answered");

    let arrival: Vec<u64> = got.iter().map(|(id, _)| *id).collect();
    let mut ids: Vec<u64> = arrival.clone();
    ids.sort_unstable();
    assert_eq!(ids, (100..148).collect::<Vec<u64>>(), "ids match exactly once");

    let mut sorted = got;
    sorted.sort_by_key(|(id, _)| *id);
    let transcript = sorted
        .iter()
        .map(|(id, resp)| match resp {
            // `completed_at` is wall-derived on the live transport, so the
            // canonical transcript excludes it.
            Response::Committed { txn, kind, correspondences, .. } => {
                format!("{id} committed txn={txn} kind={kind:?} corr={correspondences}")
            }
            Response::Aborted { txn, code, correspondences, .. } => {
                format!("{id} aborted txn={txn} code={code:?} corr={correspondences}")
            }
            other => format!("{id} {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n");
    drop(stream);
    cluster.finish_checked("pipelining");
    (arrival, transcript)
}

/// N interleaved requests on one connection are matched by request id
/// regardless of completion order, and the transcript is byte-identical
/// across two runs of the same seed.
#[test]
fn pipelining_matches_by_id_and_is_seed_stable() {
    let (arrival, transcript_a) = pipelined_run(11);
    // The shortage update (id 100) was submitted first but needs peer
    // round trips; at least one later local commit must overtake it.
    let pos_shortage = arrival.iter().position(|&id| id == 100).expect("id 100 answered");
    assert!(
        pos_shortage > 0,
        "expected out-of-order completion; shortage update finished first"
    );
    // All 48 committed: the shortage was satisfiable from peer AV.
    assert!(transcript_a.lines().all(|l| l.contains("committed")), "{transcript_a}");

    let (_, transcript_b) = pipelined_run(11);
    assert_eq!(transcript_a, transcript_b, "same seed must give identical transcripts");
}

// ---- admission ------------------------------------------------------------

/// Connections beyond the per-site cap are refused with a typed error,
/// and the slot frees up when an admitted connection leaves.
#[test]
fn admission_cap_refuses_with_typed_error() {
    let cluster = boot(3, 21, GatewayConfig { max_connections: 1, ..GatewayConfig::default() });

    let admitted = Connection::connect(cluster.addr(0)).expect("first connection");
    let resp = admitted.call(&Request::Ping, Duration::from_secs(5)).expect("ping");
    assert_eq!(format!("{resp:?}"), format!("{:?}", Response::Pong));

    // Over the cap: the refusal is a typed wire error, then close.
    let mut refused = TcpStream::connect(cluster.addr(0)).expect("tcp connect");
    let frames = raw_responses(&mut refused, 1, Duration::from_secs(5));
    match frames.as_slice() {
        [(0, Response::Error { code: ErrorCode::AdmissionRefused, .. })] => {}
        other => panic!("want AdmissionRefused, got {other:?}"),
    }
    assert_eq!(cluster.gateway.stats().refused, 1);

    // A different site's listener has its own cap.
    let other_site = Connection::connect(cluster.addr(1)).expect("site 1 connection");
    other_site.call(&Request::Ping, Duration::from_secs(5)).expect("site 1 ping");

    // Dropping the admitted connection frees the slot.
    drop(admitted);
    let deadline = Instant::now() + Duration::from_secs(5);
    while cluster.gateway.connections(0) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let readmitted = Connection::connect(cluster.addr(0)).expect("slot freed");
    readmitted.call(&Request::Ping, Duration::from_secs(5)).expect("ping after readmit");

    cluster.finish_checked("admission");
}

// ---- backpressure ---------------------------------------------------------

/// Pipelining past the in-flight window draws typed `OverWindow` errors
/// while the blocking update is still in flight.
#[test]
fn over_window_requests_get_typed_errors() {
    let cluster = boot(
        3,
        31,
        GatewayConfig { max_in_flight: 1, shed_after: 100, ..GatewayConfig::default() },
    );
    let mut stream = TcpStream::connect(cluster.addr(0)).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // Product 4 is Immediate (2PC across all sites): the commit takes
    // several network round trips, holding the window open while the
    // two follow-ups arrive.
    raw_update(&mut stream, 1, 4, -10);
    raw_update(&mut stream, 2, 1, -1);
    raw_update(&mut stream, 3, 2, -1);

    let got = raw_responses(&mut stream, 3, Duration::from_secs(20));
    assert_eq!(got.len(), 3, "all three answered");
    let over: Vec<u64> = got
        .iter()
        .filter_map(|(id, r)| {
            matches!(r, Response::Error { code: ErrorCode::OverWindow, .. }).then_some(*id)
        })
        .collect();
    assert_eq!(over, vec![2, 3], "both over-window requests refused, in order");
    // The blocking update itself must resolve normally (id 1).
    let resolved: Vec<&(u64, Response)> = got
        .iter()
        .filter(|(_, r)| matches!(r, Response::Committed { .. } | Response::Aborted { .. }))
        .collect();
    assert_eq!(resolved.len(), 1);
    assert_eq!(resolved[0].0, 1, "blocking update answered by id");
    assert_eq!(cluster.gateway.stats().over_window, 2);

    drop(stream);
    cluster.finish_checked("over-window");
}

/// A reader that stops draining and keeps pipelining is shed after its
/// strike budget — without delaying a concurrent well-behaved client.
#[test]
fn slow_client_is_shed_without_stalling_fast_client() {
    let cluster = boot(
        3,
        41,
        GatewayConfig {
            max_in_flight: 1,
            shed_after: 3,
            queue_slack: 8,
            ..GatewayConfig::default()
        },
    );

    // The abuser: one Immediate update to hold the window, then a burst
    // far past the strike budget, never reading a single response.
    let mut abuser = TcpStream::connect(cluster.addr(0)).expect("connect abuser");
    abuser.set_nodelay(true).expect("nodelay");
    let mut burst = BytesMut::new();
    encode_request(1, &Request::Update { product: 4, delta: -10 }, &mut burst);
    for i in 0..16u64 {
        encode_request(2 + i, &Request::Update { product: 1, delta: -1 }, &mut burst);
    }
    abuser.write_all(&burst).expect("write burst");

    // Meanwhile a fast client on its own connection (same site) gets
    // every update through promptly.
    let fast = Connection::connect(cluster.addr(0)).expect("connect fast client");
    for i in 0..20 {
        let resp = fast
            .call(
                &Request::Update { product: 1 + (i % 3), delta: -1 },
                Duration::from_secs(5),
            )
            .expect("fast client never stalls");
        assert!(
            matches!(resp, Response::Committed { .. }),
            "fast client update {i}: {resp:?}"
        );
    }

    // The abuser must be shed (strike budget exhausted).
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.gateway.stats().shed == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    let stats = cluster.gateway.stats();
    assert_eq!(stats.shed, 1, "abuser shed exactly once");
    assert!(stats.over_window >= 3, "strikes were recorded: {stats:?}");

    drop(abuser);
    drop(fast);
    // The abuser's *accepted* updates still went through the protocol;
    // the oracle accounts for every one of them.
    cluster.finish_checked("slow-client-shed");
}

// ---- wire-level torture ---------------------------------------------------

/// Garbage where a header should be: typed `Malformed` error, then the
/// gateway closes the connection — and keeps serving everyone else.
#[test]
fn garbage_header_gets_typed_error_then_close() {
    let cluster = boot(3, 51, GatewayConfig::default());
    let mut vandal = TcpStream::connect(cluster.addr(2)).expect("connect");
    vandal.write_all(b"GET / HTTP/1.1\r\nHost: not-a-wire-client\r\n\r\n").expect("write");
    let frames = raw_responses(&mut vandal, 1, Duration::from_secs(5));
    match frames.as_slice() {
        [(0, Response::Error { code: ErrorCode::Malformed, .. })] => {}
        other => panic!("want Malformed error, got {other:?}"),
    }
    // Connection is closed after the error frame.
    vandal.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
    let mut rest = Vec::new();
    let _ = vandal.read_to_end(&mut rest);
    assert!(rest.is_empty(), "nothing after the typed error");

    // The cluster is unbothered.
    let healthy = Connection::connect(cluster.addr(2)).expect("connect after vandal");
    healthy.call(&Request::Ping, Duration::from_secs(5)).expect("ping");
    cluster.finish_checked("garbage-header");
}

/// A well-framed request of unknown kind is answered with a typed error
/// carrying its request id, and the connection survives.
#[test]
fn unknown_kind_is_answered_and_connection_survives() {
    let cluster = boot(3, 61, GatewayConfig::default());
    let mut stream = TcpStream::connect(cluster.addr(0)).expect("connect");

    let mut frame = Vec::new();
    frame.extend_from_slice(&MAGIC.to_be_bytes());
    frame.push(VERSION);
    frame.push(0x7F); // no such kind
    frame.extend_from_slice(&777u64.to_be_bytes());
    frame.extend_from_slice(&0u32.to_be_bytes());
    stream.write_all(&frame).expect("write unknown-kind frame");

    let frames = raw_responses(&mut stream, 1, Duration::from_secs(5));
    match frames.as_slice() {
        [(777, Response::Error { code: ErrorCode::UnsupportedKind, .. })] => {}
        other => panic!("want UnsupportedKind for id 777, got {other:?}"),
    }

    // Framing stayed intact: a valid request on the same connection works.
    raw_update(&mut stream, 778, 1, -1);
    let frames = raw_responses(&mut stream, 1, Duration::from_secs(10));
    match frames.as_slice() {
        [(778, Response::Committed { .. })] => {}
        other => panic!("want commit for id 778, got {other:?}"),
    }
    drop(stream);
    cluster.finish_checked("unknown-kind");
}

/// A client that dies mid-frame neither crashes nor wedges the gateway;
/// the requests completed before the cut are fully accounted for.
#[test]
fn mid_frame_disconnect_is_contained() {
    let cluster = boot(3, 71, GatewayConfig::default());
    let mut stream = TcpStream::connect(cluster.addr(1)).expect("connect");

    // One whole update, then half a frame, then vanish.
    let mut buf = BytesMut::new();
    encode_request(5, &Request::Update { product: 1, delta: -2 }, &mut buf);
    let mut half = BytesMut::new();
    encode_request(6, &Request::Update { product: 2, delta: -3 }, &mut half);
    stream.write_all(&buf).expect("whole frame");
    stream.write_all(&half[..half.len() / 2]).expect("half frame");
    drop(stream);

    // The gateway retires the connection and stays healthy.
    let deadline = Instant::now() + Duration::from_secs(10);
    while cluster.gateway.stats().closed == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(cluster.gateway.stats().closed, 1, "mid-frame EOF is a clean close");
    assert_eq!(cluster.gateway.stats().updates, 1, "only the whole frame was accepted");

    let healthy = Connection::connect(cluster.addr(1)).expect("connect after disconnect");
    healthy.call(&Request::Ping, Duration::from_secs(5)).expect("ping");
    drop(healthy);
    // The accepted update is in the submission log; the oracle checks it.
    cluster.finish_checked("mid-frame-disconnect");
}

// ---- loadgen smoke --------------------------------------------------------

/// The whole client path at small scale: loadgen drives a 3-site
/// cluster through the gateway, oracle-checks, and writes BENCH files.
#[test]
fn loadgen_smoke_is_oracle_clean() {
    let dir = std::env::temp_dir().join(format!("avdb-loadgen-smoke-{}", std::process::id()));
    let spec = avdb::loadgen::LoadgenSpec {
        sites: 3,
        updates: 300,
        connections: 9,
        window: 8,
        seed: 5,
        label: "smoke-test".into(),
        out_dir: dir.clone(),
        ..avdb::loadgen::LoadgenSpec::default()
    };
    let report = avdb::loadgen::run(&spec).expect("loadgen run is oracle-clean");
    assert!(report.oracle_ok);
    assert_eq!(report.failures, 0, "no lost replies on a clean run");
    assert_eq!(report.committed + report.aborted, 300, "every update resolved");
    assert!(dir.join("BENCH_smoke-test.json").is_file());
    assert!(dir.join("BENCH_smoke-test.txt").is_file());
    let _ = std::fs::remove_dir_all(&dir);
}
