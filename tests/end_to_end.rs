//! Cross-crate integration: the full proposed system driven through the
//! facade crate's public API, with final states verified by the shared
//! conformance oracle.

mod common;

use avdb::prelude::*;
use avdb::types::{AvAllocation, LatencyModel, ProductClass};
use avdb::workload::{UpdateStream, WorkloadSpec};
use common::{assert_oracle_sim, settle_sim, Submissions};

fn paper_system(seed: u64) -> DistributedSystem {
    DistributedSystem::new(avdb::sim::paper_config(seed))
}

/// Drives `n` paper-workload updates and returns the settled system plus
/// the submission log for the oracle.
fn driven(n: usize, seed: u64) -> (DistributedSystem, Submissions) {
    let mut sys = paper_system(seed);
    let mut subs = Submissions::new();
    let spec = WorkloadSpec::paper(n, seed);
    for (at, req) in UpdateStream::new(spec, &sys.config().catalog.clone()) {
        subs.submit_at(&mut sys, at, req);
    }
    sys.run_until_quiescent();
    settle_sim(&mut sys);
    (sys, subs)
}

#[test]
fn paper_workload_converges_and_conserves() {
    let (mut sys, subs) = driven(1_200, 42);
    sys.check_convergence().expect("replicas converge");
    for p in 0..sys.config().n_products() {
        sys.check_av_conservation(ProductId(p as u32))
            .unwrap_or_else(|(e, a)| panic!("product{p}: expected AV {e}, actual {a}"));
    }
    let outcomes = sys.drain_outcomes();
    assert_eq!(outcomes.len(), 1_200, "every update resolves");
    // Network pairing: every message is half of a correspondence.
    assert_eq!(sys.counters().total_messages() % 2, 0);
    // At quiescence every replication queue has drained: the depth gauge
    // reads zero and no per-product divergence remains anywhere.
    for site in SiteId::all(sys.config().n_sites) {
        let reg = sys.accelerator(site).registry();
        assert_eq!(reg.gauge("repl.queue.depth"), 0, "{site} still retains deltas");
        let status = sys.status(site);
        assert_eq!(status.repl_queue_depth, 0, "{site} status disagrees with gauge");
        for row in &status.av {
            assert_eq!(row.divergence, 0, "{site} product {} still diverged", row.product);
        }
    }
    assert_oracle_sim(&sys, subs, outcomes, "paper-workload");
}

#[test]
fn delay_commits_are_instant_at_origin() {
    let mut sys = paper_system(7);
    let mut subs = Submissions::new();
    let product = ProductId(0);
    subs.submit_at(&mut sys, VirtualTime(5), UpdateRequest::new(SiteId(1), product, Volume(-50)));
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    match &outcomes[0].2 {
        UpdateOutcome::Committed { completed_at, correspondences: 0, .. } => {
            assert_eq!(*completed_at, VirtualTime(5), "zero-latency local commit");
        }
        other => panic!("expected free local commit, got {other:?}"),
    }
    settle_sim(&mut sys);
    assert_oracle_sim(&sys, subs, outcomes, "instant-local-commit");
}

#[test]
fn global_stock_never_oversold_with_av_bounds() {
    // Hammer one product with decrements far beyond stock: commits must
    // stop exactly when system-wide AV (== stock) runs out.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(100))
        .seed(3)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    let mut subs = Submissions::new();
    for i in 0..40u64 {
        let site = SiteId(1 + (i % 2) as u32);
        subs.submit_at(
            &mut sys,
            VirtualTime(i * 3),
            UpdateRequest::new(site, ProductId(0), Volume(-7)),
        );
    }
    sys.run_until_quiescent();
    settle_sim(&mut sys);
    sys.check_convergence().unwrap();
    let outcomes = sys.drain_outcomes();
    let committed = outcomes.iter().filter(|(_, _, o)| o.is_committed()).count();
    // 100 / 7 = 14 commits fit; the rest abort on insufficient AV.
    assert_eq!(committed, 14);
    let final_stock = sys.stock(SiteId::BASE, ProductId(0));
    assert_eq!(final_stock, Volume(100 - 14 * 7));
    assert!(final_stock >= Volume::ZERO, "escrow safety");
    assert_oracle_sim(&sys, subs, outcomes, "oversell-bound");
}

#[test]
fn jittered_latency_still_deterministic_and_convergent() {
    let run = |seed: u64| {
        let cfg = SystemConfig::builder()
            .sites(4)
            .regular_products(5, Volume(400))
            .latency(LatencyModel::Jittered { base: 1, spread: 9 })
            .seed(seed)
            .build()
            .unwrap();
        let mut sys = DistributedSystem::new(cfg);
        let mut subs = Submissions::new();
        let spec = WorkloadSpec {
            n_sites: 4,
            ..WorkloadSpec::paper(400, seed)
        };
        for (at, req) in UpdateStream::new(spec, &sys.config().catalog.clone()) {
            subs.submit_at(&mut sys, at, req);
        }
        sys.run_until_quiescent();
        settle_sim(&mut sys);
        sys.check_convergence().unwrap();
        let outcomes = sys.drain_outcomes();
        let result = (
            sys.counters().snapshot(),
            (0..5).map(|p| sys.stock(SiteId(0), ProductId(p))).collect::<Vec<_>>(),
        );
        assert_oracle_sim(&sys, subs, outcomes, "jittered-latency");
        result
    };
    assert_eq!(run(99), run(99), "same seed, same everything");
    assert_ne!(run(99).0, run(100).0, "different seed, different traffic");
}

#[test]
fn reclassification_mid_stream_is_seamless() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(300))
        .non_regular_products(1, Volume(300))
        .seed(5)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    let mut subs = Submissions::new();
    let reg = ProductId(0);
    let nonreg = ProductId(1);

    // Phase 1: both products see traffic under their initial regimes.
    for i in 0..20u64 {
        subs.submit_at(
            &mut sys,
            VirtualTime(i * 10),
            UpdateRequest::new(SiteId(1), reg, Volume(-3)),
        );
        subs.submit_at(
            &mut sys,
            VirtualTime(i * 10 + 5),
            UpdateRequest::new(SiteId(2), nonreg, Volume(-3)),
        );
    }
    sys.run_until_quiescent();
    let phase1 = sys.drain_outcomes();
    let imm1 = phase1
        .iter()
        .filter(|(_, _, o)| matches!(o, UpdateOutcome::Committed { kind: UpdateKind::Immediate, .. }))
        .count();
    assert_eq!(imm1, 20, "non-regular goes Immediate");

    // Phase 2: swap both regimes at runtime.
    let nonreg_stock = sys.stock(SiteId::BASE, nonreg);
    sys.reclassify_all(nonreg, ProductClass::Regular, nonreg_stock);
    sys.reclassify_all(reg, ProductClass::NonRegular, Volume::ZERO);
    sys.run_until_quiescent();
    for i in 0..20u64 {
        let t = sys.now().after(i * 10 + 1);
        subs.submit_at(&mut sys, t, UpdateRequest::new(SiteId(1), reg, Volume(-3)));
        subs.submit_at(&mut sys, t.after(5), UpdateRequest::new(SiteId(2), nonreg, Volume(-3)));
    }
    sys.run_until_quiescent();
    let phase2 = sys.drain_outcomes();
    let delay2 = phase2
        .iter()
        .filter(|(_, _, o)| matches!(o, UpdateOutcome::Committed { kind: UpdateKind::Delay, .. }))
        .count();
    let imm2 = phase2
        .iter()
        .filter(|(_, _, o)| matches!(o, UpdateOutcome::Committed { kind: UpdateKind::Immediate, .. }))
        .count();
    assert!(delay2 >= 20, "reclassified product now takes the Delay path");
    assert!(imm2 >= 19, "the other direction too (lock races may abort one)");
    settle_sim(&mut sys);
    sys.check_convergence().unwrap();
    // AV pools were redefined mid-run, so the oracle skips the checks
    // anchored to the initial allocation but keeps the rest.
    let mut outcomes = phase1;
    outcomes.extend(phase2);
    let obs = common::observe_sim(&sys, subs, outcomes).with_reclassification();
    avdb::oracle::check(&obs).assert_ok("reclassification");
}

#[test]
fn weighted_fig1_allocation_behaves_like_the_paper_example() {
    // Fig. 1: AV 40/20/40 of 100 total; site 1 updates −30, which exceeds
    // its 20 AV → it fetches from a peer and commits.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(100))
        .av_weights(vec![400, 200, 400])
        .seed(1)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    let mut subs = Submissions::new();
    assert_eq!(sys.av_available(SiteId(1), ProductId(0)), Volume(20));
    subs.submit_at(&mut sys, VirtualTime(0), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-30)));
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    match &outcomes[0].2 {
        UpdateOutcome::Committed { correspondences, .. } => {
            assert!(*correspondences >= 1, "needed at least one AV fetch")
        }
        other => panic!("expected commit, got {other:?}"),
    }
    assert_eq!(sys.stock(SiteId(1), ProductId(0)), Volume(70), "data updated to 70 (Fig. 1)");
    settle_sim(&mut sys);
    sys.check_av_conservation(ProductId(0)).unwrap();
    assert_eq!(sys.av_system_total(ProductId(0)), Volume(70));
    assert_oracle_sim(&sys, subs, outcomes, "fig1-weighted");
}

#[test]
fn all_at_base_and_checkpoint_interplay() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(500))
        .av_allocation(AvAllocation::AllAtBase)
        .seed(8)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    let mut subs = Submissions::new();
    for i in 0..30u64 {
        let site = SiteId(1 + (i % 2) as u32);
        subs.submit_at(
            &mut sys,
            VirtualTime(i * 7),
            UpdateRequest::new(site, ProductId((i % 2) as u32), Volume(-10)),
        );
    }
    sys.run_until(VirtualTime(100));
    sys.checkpoint_all();
    sys.run_until_quiescent();
    // Crash + recover every site in turn; state must survive.
    for s in 0..3u32 {
        let t = sys.now();
        sys.crash_at(t.after(1), SiteId(s));
        sys.recover_at(t.after(2), SiteId(s));
        sys.run_until_quiescent();
    }
    settle_sim(&mut sys);
    sys.check_convergence().unwrap();
    let outcomes = sys.drain_outcomes();
    let committed = outcomes.iter().filter(|(_, _, o)| o.is_committed()).count();
    assert_eq!(committed, 30, "plenty of AV at base for every decrement");
    assert_oracle_sim(&sys, subs, outcomes, "all-at-base-checkpoint");
}
