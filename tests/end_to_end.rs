//! Cross-crate integration: the full proposed system driven through the
//! facade crate's public API.

use avdb::prelude::*;
use avdb::types::{AvAllocation, LatencyModel, ProductClass};
use avdb::workload::{UpdateStream, WorkloadSpec};

fn paper_system(seed: u64) -> DistributedSystem {
    DistributedSystem::new(avdb::sim::paper_config(seed))
}

/// Drives `n` paper-workload updates and returns the system (converged).
fn driven(n: usize, seed: u64) -> DistributedSystem {
    let mut sys = paper_system(seed);
    let spec = WorkloadSpec::paper(n, seed);
    for (at, req) in UpdateStream::new(spec, &sys.config().catalog.clone()) {
        sys.submit_at(at, req);
    }
    sys.run_until_quiescent();
    sys.flush_all();
    sys.run_until_quiescent();
    sys
}

#[test]
fn paper_workload_converges_and_conserves() {
    let mut sys = driven(1_200, 42);
    sys.check_convergence().expect("replicas converge");
    for p in 0..sys.config().n_products() {
        sys.check_av_conservation(ProductId(p as u32))
            .unwrap_or_else(|(e, a)| panic!("product{p}: expected AV {e}, actual {a}"));
    }
    let outcomes = sys.drain_outcomes();
    assert_eq!(outcomes.len(), 1_200, "every update resolves");
    // Network pairing: every message is half of a correspondence.
    assert_eq!(sys.counters().total_messages() % 2, 0);
}

#[test]
fn delay_commits_are_instant_at_origin() {
    let mut sys = paper_system(7);
    let product = ProductId(0);
    sys.submit_at(VirtualTime(5), UpdateRequest::new(SiteId(1), product, Volume(-50)));
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    match &outcomes[0].2 {
        UpdateOutcome::Committed { completed_at, correspondences: 0, .. } => {
            assert_eq!(*completed_at, VirtualTime(5), "zero-latency local commit");
        }
        other => panic!("expected free local commit, got {other:?}"),
    }
}

#[test]
fn global_stock_never_oversold_with_av_bounds() {
    // Hammer one product with decrements far beyond stock: commits must
    // stop exactly when system-wide AV (== stock) runs out.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(100))
        .seed(3)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    for i in 0..40u64 {
        let site = SiteId(1 + (i % 2) as u32);
        sys.submit_at(VirtualTime(i * 3), UpdateRequest::new(site, ProductId(0), Volume(-7)));
    }
    sys.run_until_quiescent();
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_convergence().unwrap();
    let outcomes = sys.drain_outcomes();
    let committed = outcomes.iter().filter(|(_, _, o)| o.is_committed()).count();
    // 100 / 7 = 14 commits fit; the rest abort on insufficient AV.
    assert_eq!(committed, 14);
    let final_stock = sys.stock(SiteId::BASE, ProductId(0));
    assert_eq!(final_stock, Volume(100 - 14 * 7));
    assert!(final_stock >= Volume::ZERO, "escrow safety");
}

#[test]
fn jittered_latency_still_deterministic_and_convergent() {
    let run = |seed: u64| {
        let cfg = SystemConfig::builder()
            .sites(4)
            .regular_products(5, Volume(400))
            .latency(LatencyModel::Jittered { base: 1, spread: 9 })
            .seed(seed)
            .build()
            .unwrap();
        let mut sys = DistributedSystem::new(cfg);
        let spec = WorkloadSpec {
            n_sites: 4,
            ..WorkloadSpec::paper(400, seed)
        };
        for (at, req) in UpdateStream::new(spec, &sys.config().catalog.clone()) {
            sys.submit_at(at, req);
        }
        sys.run_until_quiescent();
        sys.flush_all();
        sys.run_until_quiescent();
        sys.check_convergence().unwrap();
        (
            sys.counters().snapshot(),
            (0..5).map(|p| sys.stock(SiteId(0), ProductId(p))).collect::<Vec<_>>(),
        )
    };
    assert_eq!(run(99), run(99), "same seed, same everything");
    assert_ne!(run(99).0, run(100).0, "different seed, different traffic");
}

#[test]
fn reclassification_mid_stream_is_seamless() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(300))
        .non_regular_products(1, Volume(300))
        .seed(5)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    let reg = ProductId(0);
    let nonreg = ProductId(1);

    // Phase 1: both products see traffic under their initial regimes.
    for i in 0..20u64 {
        sys.submit_at(VirtualTime(i * 10), UpdateRequest::new(SiteId(1), reg, Volume(-3)));
        sys.submit_at(VirtualTime(i * 10 + 5), UpdateRequest::new(SiteId(2), nonreg, Volume(-3)));
    }
    sys.run_until_quiescent();
    let phase1 = sys.drain_outcomes();
    let imm1 = phase1
        .iter()
        .filter(|(_, _, o)| matches!(o, UpdateOutcome::Committed { kind: UpdateKind::Immediate, .. }))
        .count();
    assert_eq!(imm1, 20, "non-regular goes Immediate");

    // Phase 2: swap both regimes at runtime.
    let nonreg_stock = sys.stock(SiteId::BASE, nonreg);
    sys.reclassify_all(nonreg, ProductClass::Regular, nonreg_stock);
    sys.reclassify_all(reg, ProductClass::NonRegular, Volume::ZERO);
    sys.run_until_quiescent();
    for i in 0..20u64 {
        let t = sys.now().after(i * 10 + 1);
        sys.submit_at(t, UpdateRequest::new(SiteId(1), reg, Volume(-3)));
        sys.submit_at(t.after(5), UpdateRequest::new(SiteId(2), nonreg, Volume(-3)));
    }
    sys.run_until_quiescent();
    let phase2 = sys.drain_outcomes();
    let delay2 = phase2
        .iter()
        .filter(|(_, _, o)| matches!(o, UpdateOutcome::Committed { kind: UpdateKind::Delay, .. }))
        .count();
    let imm2 = phase2
        .iter()
        .filter(|(_, _, o)| matches!(o, UpdateOutcome::Committed { kind: UpdateKind::Immediate, .. }))
        .count();
    assert!(delay2 >= 20, "reclassified product now takes the Delay path");
    assert!(imm2 >= 19, "the other direction too (lock races may abort one)");
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_convergence().unwrap();
}

#[test]
fn weighted_fig1_allocation_behaves_like_the_paper_example() {
    // Fig. 1: AV 40/20/40 of 100 total; site 1 updates −30, which exceeds
    // its 20 AV → it fetches from a peer and commits.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(100))
        .av_weights(vec![400, 200, 400])
        .seed(1)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    assert_eq!(sys.av_available(SiteId(1), ProductId(0)), Volume(20));
    sys.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-30)));
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    match &outcomes[0].2 {
        UpdateOutcome::Committed { correspondences, .. } => {
            assert!(*correspondences >= 1, "needed at least one AV fetch")
        }
        other => panic!("expected commit, got {other:?}"),
    }
    assert_eq!(sys.stock(SiteId(1), ProductId(0)), Volume(70), "data updated to 70 (Fig. 1)");
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_av_conservation(ProductId(0)).unwrap();
    assert_eq!(sys.av_system_total(ProductId(0)), Volume(70));
}

#[test]
fn all_at_base_and_checkpoint_interplay() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(500))
        .av_allocation(AvAllocation::AllAtBase)
        .seed(8)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    for i in 0..30u64 {
        let site = SiteId(1 + (i % 2) as u32);
        sys.submit_at(
            VirtualTime(i * 7),
            UpdateRequest::new(site, ProductId((i % 2) as u32), Volume(-10)),
        );
    }
    sys.run_until(VirtualTime(100));
    sys.checkpoint_all();
    sys.run_until_quiescent();
    // Crash + recover every site in turn; state must survive.
    for s in 0..3u32 {
        let t = sys.now();
        sys.crash_at(t.after(1), SiteId(s));
        sys.recover_at(t.after(2), SiteId(s));
        sys.run_until_quiescent();
    }
    sys.flush_all();
    sys.run_until_quiescent();
    sys.flush_all();
    sys.run_until_quiescent();
    sys.check_convergence().unwrap();
    let outcomes = sys.drain_outcomes();
    let committed = outcomes.iter().filter(|(_, _, o)| o.is_committed()).count();
    assert_eq!(committed, 30, "plenty of AV at base for every decrement");
}
