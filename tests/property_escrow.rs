//! Property coverage for `AvTable` arithmetic at the extremes: whatever
//! sequence of holds, consumes, releases, withdrawals and deposits runs
//! against a row — including volumes at the edges of `i64` — the table
//! must never go negative and never create or destroy volume.

use avdb::escrow::AvTable;
use avdb::types::{ProductId, SiteId, TxnId, Volume};
use proptest::prelude::*;

const P: ProductId = ProductId(0);

fn txn(t: u8) -> TxnId {
    TxnId::new(SiteId(0), t as u64)
}

/// Amounts biased toward the edges of the representable range.
fn amounts() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(0i64),
        Just(1i64),
        Just(i64::MAX),
        Just(i64::MAX - 1),
        Just(i64::MAX / 2),
        0i64..1_000,
    ]
}

/// Initial row volumes from tiny to maximal.
fn initials() -> impl Strategy<Value = i64> {
    prop_oneof![
        Just(0i64),
        Just(1i64),
        Just(i64::MAX / 2),
        Just(i64::MAX - 1),
        Just(i64::MAX),
        0i64..10_000,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The master conservation property: after every operation the row's
    /// total exactly equals the initial volume plus deposits minus what
    /// was consumed or withdrawn — tracked in i128 so the *test* cannot
    /// overflow even though the table works in i64.
    #[test]
    fn av_table_is_lossless_at_extreme_magnitudes(
        initial in initials(),
        ops in prop::collection::vec((0u8..5, amounts(), 0u8..4), 1..60),
    ) {
        let mut tab = AvTable::new(1);
        tab.define(P, Volume(initial)).unwrap();
        let mut expected: i128 = initial as i128;
        for (op, amount, t) in ops {
            match op {
                0 => {
                    let got = tab.hold_up_to(txn(t), P, Volume(amount)).unwrap();
                    prop_assert!(got.get() <= amount, "hold gave more than asked");
                }
                1 => {
                    tab.release(txn(t), P).unwrap();
                }
                2 => {
                    let eat = Volume(amount.min(tab.held_by(txn(t), P).get()));
                    tab.consume(txn(t), P, eat).unwrap();
                    expected -= eat.get() as i128;
                }
                3 => {
                    let got = tab.withdraw_up_to(P, Volume(amount)).unwrap();
                    prop_assert!(got.get() <= amount);
                    expected -= got.get() as i128;
                }
                _ => {
                    // Deposit only while the row has headroom — mirroring
                    // the protocol, where total AV is bounded by global
                    // stock and can never exceed it.
                    if expected + amount as i128 <= i64::MAX as i128 {
                        tab.deposit(P, Volume(amount)).unwrap();
                        expected += amount as i128;
                    }
                }
            }
            prop_assert!(tab.available(P) >= Volume::ZERO, "available went negative");
            prop_assert!(tab.total(P) >= tab.available(P), "holds went negative");
            prop_assert_eq!(tab.total(P).get() as i128, expected, "volume created or destroyed");
        }
    }

    /// Every mutating operation rejects negative amounts (down to
    /// `i64::MIN`, whose negation would overflow) and leaves the row
    /// untouched when it does.
    #[test]
    fn negative_amounts_are_rejected_without_side_effects(
        initial in 0i64..1_000,
        neg in prop_oneof![Just(i64::MIN), Just(i64::MIN + 1), -1_000i64..0],
    ) {
        let mut tab = AvTable::new(1);
        tab.define(P, Volume(initial)).unwrap();
        tab.hold_up_to(txn(1), P, Volume(initial / 2)).unwrap();
        let before = (tab.available(P), tab.total(P), tab.held_by(txn(1), P));
        prop_assert!(tab.hold_up_to(txn(2), P, Volume(neg)).is_err());
        prop_assert!(tab.consume(txn(1), P, Volume(neg)).is_err());
        prop_assert!(tab.deposit(P, Volume(neg)).is_err());
        prop_assert!(tab.withdraw_up_to(P, Volume(neg)).is_err());
        prop_assert_eq!((tab.available(P), tab.total(P), tab.held_by(txn(1), P)), before);
    }

    /// A hold takes `min(want, available)` and a release puts back
    /// exactly what the hold took.
    #[test]
    fn hold_then_release_restores_availability(
        initial in initials(),
        want in amounts(),
    ) {
        let mut tab = AvTable::new(1);
        tab.define(P, Volume(initial)).unwrap();
        let before = tab.available(P);
        let got = tab.hold_up_to(txn(1), P, Volume(want)).unwrap();
        prop_assert_eq!(got, Volume(want.min(before.get())));
        prop_assert_eq!(tab.available(P), before - got);
        prop_assert_eq!(tab.held_by(txn(1), P), got);
        let back = tab.release(txn(1), P).unwrap();
        prop_assert_eq!(back, got);
        prop_assert_eq!(tab.available(P), before);
    }

    /// Consuming more than the hold is an error that must leave both the
    /// hold and the total intact (all-or-nothing).
    #[test]
    fn overconsume_is_all_or_nothing(
        initial in 0i64..10_000,
        want in 0i64..10_000,
    ) {
        let mut tab = AvTable::new(1);
        tab.define(P, Volume(initial)).unwrap();
        let got = tab.hold_up_to(txn(1), P, Volume(want)).unwrap();
        prop_assert!(tab.consume(txn(1), P, got + Volume(1)).is_err());
        prop_assert_eq!(tab.held_by(txn(1), P), got, "failed consume must not eat the hold");
        prop_assert_eq!(tab.total(P), Volume(initial));
        // The exact held amount still consumes cleanly afterwards.
        tab.consume(txn(1), P, got).unwrap();
        prop_assert_eq!(tab.total(P), Volume(initial) - got);
    }

    /// Withdrawing and re-depositing the withdrawn amount is an exact
    /// identity, even at maximal volumes.
    #[test]
    fn withdraw_deposit_roundtrip_is_identity(
        initial in initials(),
        amount in amounts(),
    ) {
        let mut tab = AvTable::new(1);
        tab.define(P, Volume(initial)).unwrap();
        let got = tab.withdraw_up_to(P, Volume(amount)).unwrap();
        prop_assert_eq!(got, Volume(amount.min(initial)));
        prop_assert_eq!(tab.total(P), Volume(initial) - got);
        tab.deposit(P, got).unwrap();
        prop_assert_eq!(tab.total(P), Volume(initial));
        prop_assert_eq!(tab.available(P), Volume(initial));
    }
}
