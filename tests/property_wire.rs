//! Property torture for the wire-protocol frame codec: arbitrary
//! requests and responses survive a roundtrip through arbitrary
//! chunkings, and no input — truncated, oversized, bit-flipped, or pure
//! garbage — may ever panic, hang, or yield anything but a typed error.

use avdb::wire::{
    encode_request, encode_response, AbortCode, CommitKind, Decoder, ErrorCode, Request, Response,
    WireError, HEADER_LEN, MAX_PAYLOAD,
};
use bytes::BytesMut;
use proptest::prelude::*;

// ---- strategies -----------------------------------------------------------

fn requests() -> impl Strategy<Value = Request> {
    prop_oneof![
        (0u32..=u32::MAX, i64::MIN..=i64::MAX)
            .prop_map(|(product, delta)| Request::Update { product, delta }),
        (0u32..=u32::MAX).prop_map(|product| Request::Read { product }),
        Just(Request::Status),
        Just(Request::Ping),
    ]
}

/// Arbitrary UTF-8 payload strings, including empty and non-ASCII.
fn details() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(String::new()),
        Just("ünïcodé 火入れ ✓".to_string()),
        prop::collection::vec(32u8..127, 0..48)
            .prop_map(|v| String::from_utf8_lossy(&v).into_owned()),
    ]
}

fn abort_codes() -> impl Strategy<Value = AbortCode> {
    prop_oneof![
        Just(AbortCode::Other),
        Just(AbortCode::InsufficientAv),
        Just(AbortCode::PrepareFailed),
        Just(AbortCode::SiteUnavailable),
        Just(AbortCode::NegativeStock),
        Just(AbortCode::UnknownProduct),
        Just(AbortCode::NotDelayEligible),
        Just(AbortCode::RolledBack),
    ]
}

fn error_codes() -> impl Strategy<Value = ErrorCode> {
    prop_oneof![
        Just(ErrorCode::Malformed),
        Just(ErrorCode::UnsupportedVersion),
        Just(ErrorCode::UnsupportedKind),
        Just(ErrorCode::AdmissionRefused),
        Just(ErrorCode::OverWindow),
        Just(ErrorCode::Shed),
        Just(ErrorCode::Unavailable),
    ]
}

fn responses() -> impl Strategy<Value = Response> {
    prop_oneof![
        (0u64..=u64::MAX, 0u64..=u64::MAX, 0u64..=u64::MAX).prop_map(
            |(txn, completed_at, correspondences)| Response::Committed {
                txn,
                kind: if txn % 2 == 0 { CommitKind::Delay } else { CommitKind::Immediate },
                completed_at,
                correspondences,
            }
        ),
        ((0u64..=u64::MAX, 0u64..=u64::MAX), abort_codes(), details()).prop_map(
            |((txn, correspondences), code, detail)| Response::Aborted {
                txn,
                code,
                correspondences,
                detail,
            }
        ),
        ((0u32..=u32::MAX, i64::MIN..=i64::MAX), any::<bool>(), i64::MIN..=i64::MAX).prop_map(
            |((product, stock), av_defined, av_available)| Response::ReadOk {
                product,
                stock,
                av_defined,
                av_available,
            }
        ),
        details().prop_map(|json| Response::StatusOk { json }),
        Just(Response::Pong),
        (error_codes(), details())
            .prop_map(|(code, detail)| Response::Error { code, detail }),
    ]
}

/// Feeds `bytes` to a decoder in the chunk sizes dictated by `cuts`.
fn chunked(dec: &mut Decoder, bytes: &[u8], cuts: &[usize]) {
    let mut offset = 0;
    let mut cut_iter = cuts.iter().cycle();
    while offset < bytes.len() {
        let step = (*cut_iter.next().unwrap() % 37 + 1).min(bytes.len() - offset);
        dec.extend(&bytes[offset..offset + step]);
        offset += step;
    }
}

// ---- roundtrip ------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Any pipelined sequence of requests, cut into arbitrary chunks,
    /// decodes back byte-exact — ids, order, and payloads all intact.
    #[test]
    fn request_roundtrip_survives_any_chunking(
        reqs in prop::collection::vec((0u64..=u64::MAX, requests()), 1..24),
        cuts in prop::collection::vec(0usize..1_000, 1..12),
    ) {
        let mut buf = BytesMut::new();
        for (id, req) in &reqs {
            encode_request(*id, req, &mut buf);
        }
        let mut dec = Decoder::new();
        chunked(&mut dec, &buf, &cuts);
        let mut got = Vec::new();
        while let Some(frame) = dec.next_request().expect("valid stream") {
            got.push(frame);
        }
        prop_assert_eq!(&got, &reqs);
        prop_assert!(dec.finish().is_ok(), "clean stream must end clean");
    }

    /// Same for responses, including ones carrying arbitrary UTF-8.
    #[test]
    fn response_roundtrip_survives_any_chunking(
        resps in prop::collection::vec((0u64..=u64::MAX, responses()), 1..24),
        cuts in prop::collection::vec(0usize..1_000, 1..12),
    ) {
        let mut buf = BytesMut::new();
        for (id, resp) in &resps {
            encode_response(*id, resp, &mut buf);
        }
        let mut dec = Decoder::new();
        chunked(&mut dec, &buf, &cuts);
        let mut got = Vec::new();
        while let Some(frame) = dec.next_response().expect("valid stream") {
            got.push(frame);
        }
        prop_assert_eq!(&got, &resps);
        prop_assert!(dec.finish().is_ok(), "clean stream must end clean");
    }

    // ---- adversarial inputs ----------------------------------------------

    /// Pure garbage never panics or hangs: the decoder either consumes it
    /// as (unlikely) valid frames or returns a typed error, in bounded
    /// steps.
    #[test]
    fn garbage_never_panics(
        bytes in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        // Each iteration either consumes a frame, errors, or needs more
        // input: all three terminate the loop in bounded time.
        for _ in 0..bytes.len() + 1 {
            match dec.next_request() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(_) => break, // typed error, never a panic
            }
        }
        let _ = dec.finish();
    }

    /// A truncated valid frame is reported as `Truncated` at EOF with
    /// the exact number of dangling bytes — never a hang, never a panic.
    #[test]
    fn truncation_is_typed(
        req in requests(),
        id in 0u64..=u64::MAX,
        keep_permille in 0u32..1000,
    ) {
        let mut buf = BytesMut::new();
        encode_request(id, &req, &mut buf);
        let keep = (buf.len() as u64 * keep_permille as u64 / 1000) as usize;
        if keep == buf.len() {
            return Ok(());
        }
        let mut dec = Decoder::new();
        dec.extend(&buf[..keep]);
        prop_assert!(dec.next_request().expect("prefix is incomplete, not invalid").is_none());
        if keep == 0 {
            prop_assert!(dec.finish().is_ok(), "empty stream ends clean");
        } else {
            match dec.finish() {
                Err(WireError::Truncated { dangling }) => {
                    prop_assert_eq!(dangling, keep);
                }
                other => return Err(TestCaseError::fail(format!(
                    "want Truncated, got {other:?}"
                ))),
            }
        }
    }

    /// A header advertising a payload beyond the cap is rejected from
    /// the header alone — the decoder must not wait for the payload.
    #[test]
    fn oversized_length_rejected_from_header(
        req_id in 0u64..=u64::MAX,
        over in 1u32..=u32::MAX - MAX_PAYLOAD,
    ) {
        let len = MAX_PAYLOAD + over;
        let mut header = Vec::new();
        header.extend_from_slice(&avdb::wire::MAGIC.to_be_bytes());
        header.push(avdb::wire::VERSION);
        header.push(0x01); // Update
        header.extend_from_slice(&req_id.to_be_bytes());
        header.extend_from_slice(&len.to_be_bytes());
        assert_eq!(header.len(), HEADER_LEN);
        let mut dec = Decoder::new();
        dec.extend(&header);
        match dec.next_request() {
            Err(WireError::FrameTooLarge { len: got }) => prop_assert_eq!(got, len),
            other => return Err(TestCaseError::fail(format!(
                "want FrameTooLarge, got {other:?}"
            ))),
        }
    }

    /// Flipping any single byte of a valid frame yields either a typed
    /// error or a decoded frame (the flip may land in a don't-care spot)
    /// — never a panic.
    #[test]
    fn single_byte_corruption_never_panics(
        req in requests(),
        id in 0u64..=u64::MAX,
        pos_seed in 0usize..1_000,
        flip in 1u8..=255,
    ) {
        let mut buf = BytesMut::new();
        encode_request(id, &req, &mut buf);
        let mut bytes = buf.to_vec();
        let pos = pos_seed % bytes.len();
        bytes[pos] ^= flip;
        let mut dec = Decoder::new();
        dec.extend(&bytes);
        // Either outcome is legal; panicking or looping is not.
        for _ in 0..4 {
            match dec.next_request() {
                Ok(Some(_)) => continue,
                Ok(None) | Err(_) => break,
            }
        }
        let _ = dec.finish();
    }
}
