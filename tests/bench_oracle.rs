//! Every benchmark matrix cell runs under the conformance oracle:
//! [`run_scenario`] replays the full invariant suite (AV conservation,
//! replica convergence, outcome/filesystem correspondence accounting)
//! over the settled run and returns `Err` on any violation. This suite
//! pins that contract across fault profiles and transports — in
//! particular that a *faulted* benchmarked run still passes every
//! invariant, so BENCH numbers are never read off a corrupted run.

use avdb::bench::{run_scenario, FaultProfile, ScenarioSpec, TransportKind};

#[test]
fn sim_cells_pass_oracle_under_every_fault_profile() {
    for fault in
        [FaultProfile::Clean, FaultProfile::Loss, FaultProfile::Crash, FaultProfile::Partition]
    {
        for sites in [3usize, 5] {
            let mut spec = ScenarioSpec::base();
            spec.sites = sites;
            spec.updates = 120;
            spec.fault = fault;
            spec.seed = 3;
            let art =
                run_scenario(&spec).unwrap_or_else(|e| panic!("{} failed: {e}", spec.label()));
            assert!(
                art.result.stats.committed > 0,
                "{}: benchmark measured nothing",
                spec.label()
            );
            let resolved = art.result.stats.committed + art.result.stats.aborted;
            if fault == FaultProfile::Crash {
                // Fail-stop: updates in flight at the crashed site (and
                // inputs submitted to it while down) are wiped and
                // resolve to no outcome.
                assert!(resolved <= art.result.stats.submitted, "{}", spec.label());
            } else {
                assert_eq!(
                    resolved,
                    art.result.stats.submitted,
                    "{}: every update resolves",
                    spec.label()
                );
            }
        }
    }
}

#[test]
fn skewed_and_shortage_heavy_cells_pass_oracle() {
    // High zipf skew + scarce stock drives the AV-transfer machinery
    // hard; the oracle must still sign off on the settled state.
    let mut spec = ScenarioSpec::base();
    spec.sites = 7;
    spec.updates = 150;
    spec.initial_stock = 4_000;
    spec.zipf_milli = 1_200;
    spec.seed = 9;
    let art = run_scenario(&spec).unwrap_or_else(|e| panic!("{} failed: {e}", spec.label()));
    let stats = &art.result.stats;
    assert!(
        stats.delay_commit_remote + stats.delay_abort_insufficient > 0,
        "{}: cell was meant to exercise AV shortages",
        spec.label()
    );
}

#[test]
fn live_transport_cells_pass_oracle() {
    for transport in [TransportKind::Threads, TransportKind::Tcp] {
        let mut spec = ScenarioSpec::base();
        spec.transport = transport;
        spec.updates = 40;
        spec.seed = 2;
        let art = run_scenario(&spec).unwrap_or_else(|e| panic!("{} failed: {e}", spec.label()));
        assert!(art.result.stats.committed > 0, "{}: nothing committed", spec.label());
    }
}

#[test]
fn live_transports_reject_fault_profiles() {
    // Fault injection is a simulator capability; asking a live cell for
    // it must fail loudly instead of silently benching a clean run.
    let mut spec = ScenarioSpec::base();
    spec.transport = TransportKind::Tcp;
    spec.fault = FaultProfile::Crash;
    assert!(run_scenario(&spec).is_err());
}
