//! Message-budget regression tests: the paper's headline cost claims,
//! pinned down as exact counter equalities sourced from the telemetry
//! registry so any protocol change that silently spends more
//! correspondences fails here.
//!
//! - A Delay Update fully covered by local AV costs **zero** synchronous
//!   peer messages (§4: "the update is executed without communication").
//! - An Immediate Update costs **exactly one** lock/ready/commit round:
//!   `n-1` each of prepare, vote, decision, and done — `2(n-1)`
//!   correspondences, never more.

mod common;

use avdb::prelude::*;
use avdb::types::AvAllocation;
use common::{assert_oracle_sim, settle_sim, Submissions};

/// Every synchronous (non-propagation) message kind the protocol owns.
const SYNC_KINDS: [&str; 8] = [
    "av-request",
    "av-grant",
    "av-push",
    "av-push-ack",
    "imm-prepare",
    "imm-vote",
    "imm-decision",
    "imm-done",
];

/// One lock/ready/commit round of the Immediate protocol.
const IMM_ROUND: [&str; 4] = ["imm-prepare", "imm-vote", "imm-decision", "imm-done"];

#[test]
fn covered_delay_update_sends_zero_synchronous_messages() {
    for n in [3usize, 5, 7] {
        let cfg = SystemConfig::builder()
            .sites(n)
            .regular_products(1, Volume(300 * n as i64))
            .av_allocation(AvAllocation::Uniform)
            .seed(1)
            .build()
            .unwrap();
        let mut sys = DistributedSystem::new(cfg);
        let mut subs = Submissions::new();
        // Uniform allocation hands every site 300; a −50 is fully covered.
        subs.submit_at(
            &mut sys,
            VirtualTime(5),
            UpdateRequest::new(SiteId(1), ProductId(0), Volume(-50)),
        );
        sys.run_until_quiescent();

        // Budget from the network substrate and from the per-site
        // registries independently: not one synchronous message.
        let merged = sys.merged_registry();
        for kind in SYNC_KINDS {
            assert_eq!(sys.counters().by_kind(kind), 0, "{n} sites: network carried {kind}");
            assert_eq!(
                merged.counter(&format!("msg.sent.{kind}")),
                0,
                "{n} sites: some site sent {kind}"
            );
        }
        assert_eq!(merged.counter("delay.commit.local"), 1, "{n} sites: local commit");
        assert_eq!(merged.counter("delay.commit.remote"), 0);
        assert_eq!(merged.counter("delay.abort.insufficient-av"), 0);

        let outcomes = sys.drain_outcomes();
        match &outcomes[0].2 {
            UpdateOutcome::Committed { correspondences, .. } => {
                assert_eq!(*correspondences, 0, "{n} sites: covered commit is free")
            }
            other => panic!("{n} sites: expected covered commit, got {other:?}"),
        }

        // After settling, asynchronous propagation must be the *only*
        // traffic the entire run generated.
        settle_sim(&mut sys);
        for (kind, count) in &sys.counters().snapshot().by_kind {
            assert!(
                kind == "propagate" || kind == "propagate-ack",
                "{n} sites: unexpected {count} {kind} messages"
            );
        }
        assert_oracle_sim(&sys, subs, outcomes, "covered-delay-budget");
    }
}

#[test]
fn immediate_update_costs_exactly_one_round() {
    for n in [3usize, 5, 7] {
        let cfg = SystemConfig::builder()
            .sites(n)
            .regular_products(1, Volume(600))
            .non_regular_products(1, Volume(600))
            .seed(1)
            .build()
            .unwrap();
        let mut sys = DistributedSystem::new(cfg);
        let mut subs = Submissions::new();
        // Non-base coordinator, so completion is judged by the base
        // site's Done message — the full paper flow.
        subs.submit_at(
            &mut sys,
            VirtualTime(3),
            UpdateRequest::new(SiteId(1), ProductId(1), Volume(-10)),
        );
        sys.run_until_quiescent();

        let peers = (n - 1) as u64;
        for kind in IMM_ROUND {
            assert_eq!(sys.counters().by_kind(kind), peers, "{n} sites: {kind} count");
        }
        assert_eq!(
            sys.counters().total_messages(),
            4 * peers,
            "{n} sites: exactly one lock/ready/commit round, nothing else"
        );
        let merged = sys.merged_registry();
        assert_eq!(merged.counter("imm.commit"), 1);
        assert_eq!(merged.counter("imm.abort"), 0);

        let outcomes = sys.drain_outcomes();
        match &outcomes[0].2 {
            UpdateOutcome::Committed { correspondences, .. } => {
                assert_eq!(*correspondences, 2 * peers, "{n} sites: 2(n-1) correspondences")
            }
            other => panic!("{n} sites: expected immediate commit, got {other:?}"),
        }
        settle_sim(&mut sys);
        assert_oracle_sim(&sys, subs, outcomes, "immediate-budget");
    }
}

#[test]
fn immediate_update_from_base_is_still_one_round() {
    // When the coordinator *is* the base site, completion is immediate
    // at decision time — but the participants still send their Done, so
    // the wire cost is identical: no short-circuit hides messages.
    let n = 5usize;
    let cfg = SystemConfig::builder()
        .sites(n)
        .regular_products(1, Volume(600))
        .non_regular_products(1, Volume(600))
        .seed(1)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    let mut subs = Submissions::new();
    subs.submit_at(
        &mut sys,
        VirtualTime(3),
        UpdateRequest::new(SiteId(0), ProductId(1), Volume(-10)),
    );
    sys.run_until_quiescent();

    let peers = (n - 1) as u64;
    for kind in IMM_ROUND {
        assert_eq!(sys.counters().by_kind(kind), peers, "base coordinator: {kind} count");
    }
    assert_eq!(sys.counters().total_messages(), 4 * peers);
    assert_eq!(sys.merged_registry().counter("imm.commit"), 1);

    let outcomes = sys.drain_outcomes();
    assert!(outcomes[0].2.is_committed());
    settle_sim(&mut sys);
    assert_oracle_sim(&sys, subs, outcomes, "immediate-budget-base");
}
