//! Scale-up hot-path coverage: checkpointed replication survives a
//! fail-stop mid-truncation, the incremental knowledge digest is
//! observably identical to the dense exchange it replaced, and the
//! calendar-queue event loop stays deterministic at 32 sites.

use avdb::bench::{run_scenario, BenchReport, ScenarioSpec};
use avdb::core::{KnowledgeExchange, KnowledgeRow};
use avdb::escrow::knowledge::KnowledgeDelta;
use avdb::prelude::*;
use avdb::telemetry::Registry;

#[test]
fn crash_mid_truncation_recovers_from_checkpoint_with_av_conservation() {
    // Site 1 commits Delay updates while its outbound links are severed:
    // nothing propagates, no acks arrive, and an aggressively small
    // checkpoint threshold folds the oldest log entries into the
    // checkpoint prefix long before any peer has seen them. A fail-stop
    // in that state is the worst case for truncation — the folded
    // volume exists only as the checkpoint. Recovery plus one explicit
    // flush must still conserve AV and converge every replica.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(3, Volume(600))
        .seed(23)
        .build()
        .unwrap();
    let mut actors: Vec<Accelerator> =
        SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    actors[1].set_checkpoint_threshold(4);
    let mut sys = DistributedSystem::from_actors(cfg, actors);
    sys.sever_link(SiteId(1), SiteId(0));
    sys.sever_link(SiteId(1), SiteId(2));
    for i in 0..40u64 {
        let product = ProductId((i % 3) as u32);
        sys.submit_at(VirtualTime(5 + i * 3), UpdateRequest::new(SiteId(1), product, Volume(-2)));
    }
    sys.run_until(VirtualTime(200));

    let snap = sys.accelerator(SiteId(1)).replication_snapshot();
    assert!(snap.base > 0, "cap folds should have truncated the log (base={})", snap.base);
    assert!(snap.log.len() <= 4, "retained log bounded by the threshold");
    assert!(
        snap.ckpt_nets.as_ref().is_some_and(|n| n.iter().any(|v| *v != 0)),
        "checkpoint prefix carries the folded net volume"
    );

    sys.crash_at(VirtualTime(210), SiteId(1));
    sys.recover_at(VirtualTime(260), SiteId(1));
    sys.heal_link(SiteId(1), SiteId(0));
    sys.heal_link(SiteId(1), SiteId(2));
    sys.run_until_quiescent();
    sys.flush_all();
    sys.run_until_quiescent();

    assert!(sys.accelerator(SiteId(1)).stats().recoveries > 0, "the crash actually happened");
    for p in 0..3u32 {
        sys.check_av_conservation(ProductId(p))
            .unwrap_or_else(|(want, got)| panic!("p{p}: AV {got:?} != configured {want:?}"));
    }
    sys.check_convergence().unwrap();
    for site in SiteId::all(3) {
        assert!(
            sys.accelerator(site).fully_propagated(),
            "{site}: retained deltas drain to zero post-run"
        );
    }
}

#[test]
fn delta_digest_exchange_matches_dense_exchange_byte_for_byte() {
    // A seeded matrix of observations and piggyback frames, driven twice:
    // once through the incremental digest (watermarked deltas) and once
    // through the dense pre-digest wire format (the full belief table on
    // every frame, same receiver/sender row filter). The staleness
    // gauges each site would export — and the belief tables underneath
    // them — must be byte-identical.
    const SITES: usize = 6;
    const PRODUCTS: u32 = 4;

    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        state >> 11
    };

    let mut delta: Vec<KnowledgeExchange> =
        (0..SITES).map(|_| KnowledgeExchange::new(SITES)).collect();
    let mut dense: Vec<KnowledgeExchange> =
        (0..SITES).map(|_| KnowledgeExchange::new(SITES)).collect();

    let mut scratch: Vec<KnowledgeDelta> = Vec::new();
    let mut now = VirtualTime::ZERO;
    for _ in 0..400 {
        now = VirtualTime(now.0 + 1 + next() % 5);
        let obs = (next() as usize) % SITES;
        let peer = SiteId((next() % SITES as u64) as u32);
        let product = ProductId((next() % PRODUCTS as u64) as u32);
        let av = Volume((next() % 500) as i64);
        delta[obs].update(peer, product, av, now);
        dense[obs].update(peer, product, av, now);
        if next() % 4 == 0 {
            let rate = (next() % 20) as i64;
            delta[obs].update_rate(peer, product, rate, now);
            dense[obs].update_rate(peer, product, rate, now);
        }

        let from = (next() as usize) % SITES;
        let to = (next() as usize) % SITES;
        if from == to {
            continue;
        }
        let (me, rx) = (SiteId(from as u32), SiteId(to as u32));
        let rows = delta[from].encode_digest_for(me, rx);
        delta[to].apply_digest(rx, &rows);

        scratch.clear();
        dense[from].table().changed_since(0, &mut scratch);
        let all: Vec<KnowledgeRow> = scratch
            .iter()
            .filter(|d| d.site != rx && d.site != me)
            .map(|d| KnowledgeRow {
                site: d.site,
                product: d.product,
                av: d.av,
                at: d.at,
                rate: d.rate,
                rate_at: d.rate_at,
            })
            .collect();
        dense[to].apply_digest(rx, &all);
    }

    // Render the per-site staleness gauges exactly as an export would.
    let render = |sites: &[KnowledgeExchange]| -> String {
        let mut out = String::new();
        for (i, x) in sites.iter().enumerate() {
            let mut reg = Registry::new();
            for p in 0..SITES {
                let id = reg.gauge_id(&format!("knowledge.staleness.s{p}"));
                let stale = x.freshest(SiteId(p as u32)).map_or(-1, |t| (now.0 - t.0) as i64);
                reg.set_gauge_id(id, stale);
            }
            out.push_str(&format!("site{i} {}\n", serde_json::to_string(&reg.snapshot()).unwrap()));
        }
        out
    };
    assert_eq!(render(&delta), render(&dense), "digest exchange diverged from dense");

    // Stronger than the gauges: every belief cell agrees.
    for s in 0..SITES {
        for q in 0..SITES {
            for p in 0..PRODUCTS {
                let (peer, product) = (SiteId(q as u32), ProductId(p));
                assert_eq!(delta[s].known(peer, product), dense[s].known(peer, product));
                assert_eq!(delta[s].known_rate(peer, product), dense[s].known_rate(peer, product));
                assert_eq!(
                    delta[s].staleness(peer, product, now),
                    dense[s].staleness(peer, product, now)
                );
            }
        }
    }
}

#[test]
fn calendar_queue_is_deterministic_at_s32() {
    // 32 sites puts thousands of timers and ready-list entries through
    // the tick-bucketed calendar queue every virtual tick; the report
    // with wall-clock fields zeroed must still come out byte-identical
    // on a rerun of the same seed.
    let mut spec = ScenarioSpec::base();
    spec.sites = 32;
    spec.updates = 800;
    spec.zipf_milli = 900;
    spec.seed = 29;
    let det = |spec: &ScenarioSpec| {
        let art = run_scenario(spec).unwrap_or_else(|e| panic!("{}: {e}", spec.label()));
        BenchReport { label: "determinism-s32".to_string(), scenarios: vec![art.result] }
            .deterministic_json()
    };
    let first = det(&spec);
    assert!(first.contains("commits_per_mtick"), "sim stats present");
    assert_eq!(first, det(&spec), "same seed, same spec, same bytes at 32 sites");
}
