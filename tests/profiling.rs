//! Profiler + adaptive-sampling acceptance: a seeded lossy bench cell
//! yields a byte-identical, additive `PhaseProfile` across runs, and
//! head-based sampling is deterministic while retroactive promotion keeps
//! the full span tree of every aborted and shortage-path update.

mod common;

use avdb::bench::{run_scenario, FaultProfile, ScenarioSpec};
use avdb::prelude::*;
use avdb::simnet::DetRng;
use avdb::telemetry::analyze::verify;
use avdb::telemetry::RunExport;
use std::collections::{BTreeMap, BTreeSet};

/// A scarce-AV config: small escrow volumes force the shortage path (AV
/// negotiation, `transfer` spans) and some insufficient-AV aborts.
const SITES: usize = 4;
const REQUESTS: usize = 80;

fn config(seed: u64, sample_rate: Option<f64>) -> SystemConfig {
    let mut b = SystemConfig::builder()
        .sites(SITES)
        .regular_products(2, Volume(60))
        .non_regular_products(1, Volume(30))
        .seed(seed);
    if let Some(rate) = sample_rate {
        b = b.trace_sample_rate(rate);
    }
    b.build().unwrap()
}

fn schedule(cfg: &SystemConfig) -> Vec<(VirtualTime, UpdateRequest)> {
    let mut rng = DetRng::new(cfg.seed).derive(0x9F01);
    (0..REQUESTS)
        .map(|i| {
            let site = SiteId(rng.gen_range(SITES as u64) as u32);
            let product = ProductId(rng.gen_range(3) as u32);
            let req = UpdateRequest::new(site, product, Volume(-rng.gen_i64_inclusive(1, 8)));
            (VirtualTime(i as u64 * 5), req)
        })
        .collect()
}

/// Traces whose retained tree contains more than the bare root span.
fn fully_retained(export: &RunExport) -> BTreeSet<u64> {
    common::trace_shapes(export)
        .into_iter()
        .filter(|(_, names)| names.len() > 1)
        .map(|(t, _)| t)
        .collect()
}

#[test]
fn s7_lossy_profile_is_byte_identical_and_additive() {
    let mut spec = ScenarioSpec::base();
    spec.sites = 7;
    spec.fault = FaultProfile::Loss;
    spec.updates = 200;

    let a = run_scenario(&spec).expect("lossy cell runs clean");
    let b = run_scenario(&spec).expect("lossy cell runs clean");
    let pa = a.export.profile.clone().expect("profile attached to export");
    let pb = b.export.profile.clone().expect("profile attached to export");
    assert!(!pa.is_empty(), "lossy cell produced an empty profile");

    // Determinism: the whole profile — histograms, exemplars, link waits —
    // is byte-identical across two runs of the same seeded cell.
    assert_eq!(
        serde_json::to_string(&pa).unwrap(),
        serde_json::to_string(&pb).unwrap(),
        "profile differs between two runs of the same seeded cell"
    );

    // Additivity: critical-path self-times telescope to commit latency.
    // The acceptance bar is 1%; the construction makes it exact.
    assert!(
        pa.total_self_ticks.abs_diff(pa.total_commit_ticks) * 100 <= pa.total_commit_ticks,
        "self-time sum {} strays >1% from commit latency sum {}",
        pa.total_self_ticks,
        pa.total_commit_ticks
    );

    // The registry projection reaches /status and RunExport consumers.
    let reg = a.export.registry("profile").expect("profile registry scope");
    assert_eq!(reg.counter("profile.traces"), pa.traces);
}

#[test]
fn sampling_is_deterministic_and_promotion_keeps_aborts_and_shortages() {
    let seed = 77;
    let full_cfg = config(seed, None);
    let timed = schedule(&full_cfg);
    let full = common::export_sim(&full_cfg, &timed);

    // Reference sets from the full-rate run: every aborted txn, and every
    // txn that went down the shortage path (has a `transfer` span).
    let full_shapes = common::trace_shapes(&full);
    let aborted: BTreeSet<u64> =
        full.outcomes.iter().filter(|o| !o.committed).map(|o| o.txn).collect();
    let shortage: BTreeSet<u64> = full_shapes
        .iter()
        .filter(|(_, names)| names.iter().any(|n| n == "transfer"))
        .map(|(t, _)| *t)
        .collect();
    assert!(!aborted.is_empty(), "scarce-AV schedule produced no aborts — test is vacuous");
    assert!(!shortage.is_empty(), "scarce-AV schedule hit no shortage path — test is vacuous");

    let sampled_cfg = config(seed, Some(0.05));
    let run1 = common::export_sim(&sampled_cfg, &timed);
    let run2 = common::export_sim(&sampled_cfg, &timed);

    // Determinism: same seed + rate ⇒ byte-identical retained span set.
    assert_eq!(
        serde_json::to_string(&run1.spans).unwrap(),
        serde_json::to_string(&run2.spans).unwrap(),
        "retained spans differ between two identical sampled runs"
    );

    // Sampling actually sheds spans, and the span-tree oracle stays clean
    // (every committed update still has a rooted, orphan-free tree).
    assert!(
        run1.spans.len() < full.spans.len(),
        "sampling at 0.05 retained as many spans ({}) as full tracing ({})",
        run1.spans.len(),
        full.spans.len()
    );
    let report = verify(&run1);
    assert!(report.is_ok(), "sampled run fails the span oracle: {report}");

    // Promotion: every aborted and shortage-path update keeps its FULL
    // span tree — same causal shape as the untraced-rate-1.0 run.
    let sampled_shapes = common::trace_shapes(&run1);
    for txn in aborted.iter().chain(shortage.iter()) {
        assert_eq!(
            sampled_shapes.get(txn),
            full_shapes.get(txn),
            "trace {txn:#x} (aborted/shortage) lost spans under sampling"
        );
    }

    // The profile only folds fully-retained committed paths, so it stays
    // meaningful (no bare-root dilution) even at a 5% head rate.
    let profile = run1.profile.as_ref().expect("sampled run still exports a profile");
    let retained = fully_retained(&run1);
    assert!(
        profile.traces <= retained.len() as u64,
        "profile folded more traces ({}) than have full trees ({})",
        profile.traces,
        retained.len()
    );
}

#[test]
fn sampled_trace_id_set_is_seed_stable_across_processes() {
    // The keep/drop decision hashes (config seed, trace id) only — no
    // per-run state — so the *set* of head-sampled ids is a pure function
    // of the config. Recompute it two ways and compare.
    let cfg = config(9, Some(0.10));
    let timed = schedule(&cfg);
    let export = common::export_sim(&cfg, &timed);
    let committed: BTreeSet<u64> =
        export.outcomes.iter().filter(|o| o.committed).map(|o| o.txn).collect();
    let sampler = avdb::telemetry::TraceSampler::new(cfg.seed, cfg.trace_sampling());
    let retained = fully_retained(&export);
    // Every committed head-sampled txn must have kept its full tree.
    let missing: Vec<u64> = committed
        .iter()
        .filter(|t| sampler.sampled(**t) && !retained.contains(t))
        .copied()
        .collect();
    assert!(missing.is_empty(), "head-sampled committed traces lost spans: {missing:x?}");
}

#[test]
fn slo_counters_cover_every_outcome() {
    // Every outcome lands on exactly one lane, so the per-lane totals must
    // sum to committed + aborted across all sites.
    let mut map: BTreeMap<String, u64> = BTreeMap::new();
    let cfg = config(5, None);
    let timed = schedule(&cfg);
    let export = common::export_sim(&cfg, &timed);
    for reg in export.registries.iter().filter(|r| r.scope.starts_with("site")) {
        for key in ["slo.imm.total", "slo.delay.total", "update.committed", "update.aborted"] {
            *map.entry(key.to_string()).or_default() += reg.snapshot.counter(key);
        }
    }
    assert_eq!(
        map["slo.imm.total"] + map["slo.delay.total"],
        map["update.committed"] + map["update.aborted"],
        "SLO lane totals disagree with outcome counters: {map:?}"
    );
    assert!(map["slo.delay.total"] > 0, "no Delay-lane outcomes in a scarce-AV run");
}
