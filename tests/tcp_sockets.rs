//! The paper's system over real TCP sockets: one listener per site on
//! loopback, every protocol message a length-prefixed JSON frame — the
//! deployment shape the integrated SCM database would actually run in.
//! Final states are verified by the shared conformance oracle.

mod common;

use avdb::core::Accelerator;
use avdb::prelude::*;
use avdb::simnet::TcpMesh;
use common::{assert_oracle_live, settle_live, wait_for_outcomes, Submissions};

#[test]
fn accelerators_over_tcp_converge_and_conserve() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(3, Volume(6_000))
        .propagation_batch(5)
        .seed(13)
        .build()
        .unwrap();
    let actors = SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    let mesh: TcpMesh<Accelerator> = TcpMesh::spawn(actors, 13);

    let mut subs = Submissions::new();
    let per_site = 100usize;
    for i in 0..per_site as u64 {
        for s in 0..3u32 {
            let site = SiteId(s);
            let delta = if site == SiteId::BASE { Volume(10) } else { Volume(-7) };
            subs.inject(&mesh, UpdateRequest::new(site, ProductId((i % 3) as u32), delta));
        }
    }
    let outcomes = wait_for_outcomes(&mesh, per_site * 3);
    assert_eq!(
        outcomes.iter().filter(|(_, _, o)| o.is_committed()).count(),
        per_site * 3,
        "ample AV: every update commits over TCP"
    );

    // Anti-entropy rounds over the sockets, then stop and inspect.
    settle_live(&mesh, 3);
    let (actors, counters, _) = mesh.shutdown();

    // Frames stayed request/reply-paired on the wire.
    assert_eq!(counters.total_messages() % 2, 0);
    assert_eq!(counters.dropped_messages(), 0);
    // Convergence, AV conservation, stock-vs-commits, escrow safety.
    assert_oracle_live(&cfg, &actors, subs, outcomes, counters.snapshot(), "tcp-converge");
}

#[test]
fn immediate_updates_commit_over_tcp() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .non_regular_products(1, Volume(500))
        .seed(7)
        .build()
        .unwrap();
    let actors = SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    let mesh: TcpMesh<Accelerator> = TcpMesh::spawn(actors, 7);

    // Sequential Immediate updates (each waits for its outcome) — the
    // full prepare/vote/decision/done exchange runs over the sockets.
    let mut subs = Submissions::new();
    let mut outcomes = Vec::new();
    for i in 0..20u64 {
        let site = SiteId((i % 3) as u32);
        subs.inject(&mesh, UpdateRequest::new(site, ProductId(0), Volume(-3)));
        outcomes.extend(wait_for_outcomes(&mesh, 1));
    }
    let (actors, counters, _) = mesh.shutdown();
    let committed = outcomes.iter().filter(|(_, _, o)| o.is_committed()).count();
    assert_eq!(committed, 20, "sequential immediate updates never conflict");
    for a in &actors {
        assert_eq!(a.db().stock(ProductId(0)).unwrap(), Volume(500 - 60));
    }
    assert_oracle_live(&cfg, &actors, subs, outcomes, counters.snapshot(), "tcp-immediate");
}
