//! The paper's system over real TCP sockets: one listener per site on
//! loopback, every protocol message a length-prefixed JSON frame — the
//! deployment shape the integrated SCM database would actually run in.

use avdb::core::{Accelerator, Input};
use avdb::prelude::*;
use avdb::simnet::TcpMesh;
use std::time::{Duration, Instant};

fn wait_for(mesh: &TcpMesh<Accelerator>, expected: usize) -> Vec<(VirtualTime, SiteId, UpdateOutcome)> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut outcomes = Vec::new();
    while outcomes.len() < expected {
        assert!(
            Instant::now() < deadline,
            "timed out with {}/{expected} outcomes",
            outcomes.len()
        );
        outcomes.extend(mesh.drain_outputs());
        std::thread::sleep(Duration::from_millis(3));
    }
    outcomes
}

#[test]
fn accelerators_over_tcp_converge_and_conserve() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(3, Volume(6_000))
        .propagation_batch(5)
        .seed(13)
        .build()
        .unwrap();
    let actors = SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    let mesh: TcpMesh<Accelerator> = TcpMesh::spawn(actors, 13);

    let per_site = 100usize;
    for i in 0..per_site as u64 {
        for s in 0..3u32 {
            let site = SiteId(s);
            let delta = if site == SiteId::BASE { Volume(10) } else { Volume(-7) };
            mesh.inject(
                site,
                Input::Update(UpdateRequest::new(site, ProductId((i % 3) as u32), delta)),
            );
        }
    }
    let outcomes = wait_for(&mesh, per_site * 3);
    assert_eq!(
        outcomes.iter().filter(|(_, _, o)| o.is_committed()).count(),
        per_site * 3,
        "ample AV: every update commits over TCP"
    );

    // Anti-entropy rounds over the sockets, then stop and inspect.
    for _ in 0..3 {
        for site in SiteId::all(3) {
            mesh.inject(site, Input::FlushPropagation);
        }
        std::thread::sleep(Duration::from_millis(60));
    }
    let (actors, counters, _) = mesh.shutdown();

    // Replicas converged across processes-worth of state.
    for p in 0..3u32 {
        let stocks: Vec<Volume> = actors
            .iter()
            .map(|a| a.db().stock(ProductId(p)).unwrap())
            .collect();
        assert!(stocks.windows(2).all(|w| w[0] == w[1]), "product{p}: {stocks:?}");
    }
    // AV conserved globally: initial 3×6000 + net committed delta.
    let net: i64 = (10 - 7 - 7) * per_site as i64;
    let av_total: i64 = (0..3)
        .map(|p| actors.iter().map(|a| a.av().total(ProductId(p)).get()).sum::<i64>())
        .sum();
    assert_eq!(av_total, 3 * 6_000 + net);
    // Frames stayed request/reply-paired on the wire.
    assert_eq!(counters.total_messages() % 2, 0);
    assert_eq!(counters.dropped_messages(), 0);
}

#[test]
fn immediate_updates_commit_over_tcp() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .non_regular_products(1, Volume(500))
        .seed(7)
        .build()
        .unwrap();
    let actors = SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    let mesh: TcpMesh<Accelerator> = TcpMesh::spawn(actors, 7);

    // Sequential Immediate updates (each waits for its outcome) — the
    // full prepare/vote/decision/done exchange runs over the sockets.
    let mut committed = 0;
    for i in 0..20u64 {
        let site = SiteId((i % 3) as u32);
        mesh.inject(
            site,
            Input::Update(UpdateRequest::new(site, ProductId(0), Volume(-3))),
        );
        let outcome = wait_for(&mesh, 1);
        if outcome[0].2.is_committed() {
            committed += 1;
        }
    }
    let (actors, _, _) = mesh.shutdown();
    assert_eq!(committed, 20, "sequential immediate updates never conflict");
    for a in &actors {
        assert_eq!(a.db().stock(ProductId(0)).unwrap(), Volume(500 - 60));
    }
}
