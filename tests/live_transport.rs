//! The identical accelerator code on OS threads: protocol correctness
//! must not depend on the deterministic scheduler. Final states are
//! verified by the shared conformance oracle.

mod common;

use avdb::core::Accelerator;
use avdb::prelude::*;
use avdb::simnet::LiveRunner;
use common::{assert_oracle_live, settle_live, wait_for_outcomes, Submissions};
use std::time::Duration;

fn spawn(
    n_sites: usize,
    n_products: usize,
    stock: i64,
    seed: u64,
) -> (SystemConfig, LiveRunner<Accelerator>) {
    let cfg = SystemConfig::builder()
        .sites(n_sites)
        .regular_products(n_products, Volume(stock))
        .propagation_batch(4)
        .seed(seed)
        .build()
        .unwrap();
    let actors = SiteId::all(n_sites).map(|s| Accelerator::new(s, &cfg)).collect();
    let runner = LiveRunner::spawn(actors, seed);
    (cfg, runner)
}

#[test]
fn live_concurrent_delay_updates_converge() {
    let (cfg, runner) = spawn(3, 4, 10_000, 77);
    let mut subs = Submissions::new();
    let per_site = 150usize;
    for i in 0..per_site as u64 {
        for s in 0..3u32 {
            let site = SiteId(s);
            let delta = if site == SiteId::BASE { Volume(12) } else { Volume(-9) };
            subs.inject(&runner, UpdateRequest::new(site, ProductId((i % 4) as u32), delta));
        }
    }
    let outcomes = wait_for_outcomes(&runner, per_site * 3);
    settle_live(&runner, 3);
    let (actors, counters, _) = runner.shutdown();

    let committed = outcomes.iter().filter(|(_, _, o)| o.is_committed()).count();
    assert_eq!(committed, per_site * 3, "ample AV: everything commits");
    // Message pairing still holds on the live transport.
    assert_eq!(counters.total_messages() % 2, 0);
    // Replica convergence and global AV conservation under true
    // concurrency — the oracle replays the run against its model.
    assert_oracle_live(&cfg, &actors, subs, outcomes, counters.snapshot(), "live-converge");
}

#[test]
fn live_immediate_updates_serialize_on_locks() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .non_regular_products(1, Volume(1_000))
        .seed(5)
        .build()
        .unwrap();
    let actors = SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    let runner: LiveRunner<Accelerator> = LiveRunner::spawn(actors, 5);
    let mut subs = Submissions::new();
    let per_site = 40usize;
    for _ in 0..per_site {
        for s in 0..3u32 {
            subs.inject(&runner, UpdateRequest::new(SiteId(s), ProductId(0), Volume(-2)));
            // Slight pacing: with fully saturated injection every
            // coordinator holds its own local lock and the no-wait scheme
            // aborts everyone — a real (and documented) property of the
            // protocol, but not what this test is about.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let outcomes = wait_for_outcomes(&runner, per_site * 3);
    std::thread::sleep(Duration::from_millis(100));
    let (actors, counters, _) = runner.shutdown();
    let committed = outcomes.iter().filter(|(_, _, o)| o.is_committed()).count();
    assert!(committed >= 1, "at least some Immediate updates get through");
    // Whatever the interleaving, every replica shows exactly the
    // committed total.
    let expected = Volume(1_000 - 2 * committed as i64);
    for a in &actors {
        assert_eq!(a.db().stock(ProductId(0)).unwrap(), expected);
    }
    assert_oracle_live(&cfg, &actors, subs, outcomes, counters.snapshot(), "live-immediate");
}

#[test]
fn live_matches_simulated_final_state_on_sequential_load() {
    // With one update at a time (waiting for each outcome), the live run
    // is fully sequential, so its final state must equal the simulator's
    // for the same inputs.
    let updates: Vec<UpdateRequest> = (0..30)
        .map(|i| {
            let site = SiteId((i % 3) as u32);
            let delta = if site == SiteId::BASE { Volume(10) } else { Volume(-6) };
            UpdateRequest::new(site, ProductId((i % 2) as u32), delta)
        })
        .collect();

    // Simulator run.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(500))
        .seed(3)
        .build()
        .unwrap();
    let mut sim = DistributedSystem::new(cfg.clone());
    let mut sim_subs = Submissions::new();
    for (i, u) in updates.iter().enumerate() {
        sim_subs.submit_at(&mut sim, VirtualTime(i as u64 * 50), *u);
    }
    sim.run_until_quiescent();
    common::settle_sim(&mut sim);
    let sim_outcomes = sim.drain_outcomes();
    let sim_stocks: Vec<Volume> =
        (0..2).map(|p| sim.stock(SiteId(0), ProductId(p))).collect();
    common::assert_oracle_sim(&sim, sim_subs, sim_outcomes, "sequential-sim");

    // Live run, strictly sequential.
    let actors = SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    let runner: LiveRunner<Accelerator> = LiveRunner::spawn(actors, 3);
    let mut subs = Submissions::new();
    let mut outcomes = Vec::new();
    for u in &updates {
        subs.inject(&runner, *u);
        outcomes.extend(wait_for_outcomes(&runner, 1));
    }
    settle_live(&runner, 3);
    let (actors, counters, _) = runner.shutdown();
    for p in 0..2u32 {
        for a in &actors {
            assert_eq!(
                a.db().stock(ProductId(p)).unwrap(),
                sim_stocks[p as usize],
                "live and simulated runs disagree on product{p}"
            );
        }
    }
    assert_oracle_live(&cfg, &actors, subs, outcomes, counters.snapshot(), "sequential-live");
}

#[test]
fn live_system_survives_a_peer_kill() {
    let (cfg, runner) = spawn(3, 2, 9_000, 21);
    // Fail-stop the maker; the retailers keep selling from their AV.
    runner.kill(SiteId(0));
    std::thread::sleep(Duration::from_millis(20));
    let mut subs = Submissions::new();
    let per_site = 50usize;
    for i in 0..per_site as u64 {
        for s in 1..3u32 {
            subs.inject(
                &runner,
                UpdateRequest::new(SiteId(s), ProductId((i % 2) as u32), Volume(-4)),
            );
        }
    }
    let outcomes = wait_for_outcomes(&runner, per_site * 2);
    settle_live(&runner, 3);
    let (actors, counters, _) = runner.shutdown();
    assert_eq!(
        outcomes.iter().filter(|(_, _, o)| o.is_committed()).count(),
        per_site * 2,
        "retailer autonomy survives the maker's death"
    );
    // Propagation to the dead site was dropped, not delivered.
    assert!(counters.dropped_messages() > 0);
    // The dead maker is frozen at its last state by design; the oracle
    // checks the two live replicas (convergence between them, escrow
    // safety, and AV conservation weakened to ≤ under message loss).
    assert_oracle_live(
        &cfg,
        &actors[1..],
        subs,
        outcomes,
        counters.snapshot(),
        "live-peer-kill",
    );
}
