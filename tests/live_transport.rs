//! The identical accelerator code on OS threads: protocol correctness
//! must not depend on the deterministic scheduler.

use avdb::core::{Accelerator, Input};
use avdb::prelude::*;
use avdb::simnet::LiveRunner;
use std::time::{Duration, Instant};

fn spawn(n_sites: usize, n_products: usize, stock: i64, seed: u64) -> (SystemConfig, LiveRunner<Accelerator>) {
    let cfg = SystemConfig::builder()
        .sites(n_sites)
        .regular_products(n_products, Volume(stock))
        .propagation_batch(4)
        .seed(seed)
        .build()
        .unwrap();
    let actors = SiteId::all(n_sites).map(|s| Accelerator::new(s, &cfg)).collect();
    let runner = LiveRunner::spawn(actors, seed);
    (cfg, runner)
}

fn wait_for_outcomes(
    runner: &LiveRunner<Accelerator>,
    expected: usize,
) -> Vec<(VirtualTime, SiteId, UpdateOutcome)> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut outcomes = Vec::new();
    while outcomes.len() < expected {
        assert!(
            Instant::now() < deadline,
            "timed out with {}/{} outcomes",
            outcomes.len(),
            expected
        );
        outcomes.extend(runner.drain_outputs());
        std::thread::sleep(Duration::from_millis(2));
    }
    outcomes
}

fn settle(runner: &LiveRunner<Accelerator>, n_sites: usize) {
    // A few anti-entropy rounds with real time in between.
    for _ in 0..3 {
        for site in SiteId::all(n_sites) {
            runner.inject(site, Input::FlushPropagation);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn live_concurrent_delay_updates_converge() {
    let (_cfg, runner) = spawn(3, 4, 10_000, 77);
    let per_site = 150usize;
    for i in 0..per_site as u64 {
        for s in 0..3u32 {
            let site = SiteId(s);
            let delta = if site == SiteId::BASE { Volume(12) } else { Volume(-9) };
            runner.inject(
                site,
                Input::Update(UpdateRequest::new(site, ProductId((i % 4) as u32), delta)),
            );
        }
    }
    let outcomes = wait_for_outcomes(&runner, per_site * 3);
    settle(&runner, 3);
    let (actors, counters, _) = runner.shutdown();

    let committed: Vec<_> = outcomes.iter().filter(|(_, _, o)| o.is_committed()).collect();
    assert_eq!(committed.len(), per_site * 3, "ample AV: everything commits");

    // Replica convergence under true concurrency.
    for p in 0..4u32 {
        let product = ProductId(p);
        let stocks: Vec<Volume> =
            actors.iter().map(|a| a.db().stock(product).unwrap()).collect();
        assert!(
            stocks.windows(2).all(|w| w[0] == w[1]),
            "{product} diverged: {stocks:?}"
        );
    }
    // AV conservation: total AV == total initial AV + net committed delta
    // (checked on the global sum — the per-product split of the stream is
    // uniform but not exact).
    let net: i64 = (12 - 9 - 9) * per_site as i64;
    let av_grand: i64 = (0..4)
        .map(|p| actors.iter().map(|a| a.av().total(ProductId(p)).get()).sum::<i64>())
        .sum();
    assert_eq!(av_grand, 4 * 10_000 + net, "global AV conservation");
    // Message pairing still holds on the live transport.
    assert_eq!(counters.total_messages() % 2, 0);
}

#[test]
fn live_immediate_updates_serialize_on_locks() {
    let cfg = SystemConfig::builder()
        .sites(3)
        .non_regular_products(1, Volume(1_000))
        .seed(5)
        .build()
        .unwrap();
    let actors = SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    let runner: LiveRunner<Accelerator> = LiveRunner::spawn(actors, 5);
    let per_site = 40usize;
    for _ in 0..per_site {
        for s in 0..3u32 {
            runner.inject(
                SiteId(s),
                Input::Update(UpdateRequest::new(SiteId(s), ProductId(0), Volume(-2))),
            );
            // Slight pacing: with fully saturated injection every
            // coordinator holds its own local lock and the no-wait scheme
            // aborts everyone — a real (and documented) property of the
            // protocol, but not what this test is about.
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let outcomes = wait_for_outcomes(&runner, per_site * 3);
    std::thread::sleep(Duration::from_millis(100));
    let (actors, _, _) = runner.shutdown();
    let committed = outcomes.iter().filter(|(_, _, o)| o.is_committed()).count();
    assert!(committed >= 1, "at least some Immediate updates get through");
    // Whatever the interleaving, every replica shows exactly the
    // committed total.
    let expected = Volume(1_000 - 2 * committed as i64);
    for a in &actors {
        assert_eq!(a.db().stock(ProductId(0)).unwrap(), expected);
    }
}

#[test]
fn live_matches_simulated_final_state_on_sequential_load() {
    // With one update at a time (waiting for each outcome), the live run
    // is fully sequential, so its final state must equal the simulator's
    // for the same inputs.
    let updates: Vec<UpdateRequest> = (0..30)
        .map(|i| {
            let site = SiteId((i % 3) as u32);
            let delta = if site == SiteId::BASE { Volume(10) } else { Volume(-6) };
            UpdateRequest::new(site, ProductId((i % 2) as u32), delta)
        })
        .collect();

    // Simulator run.
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(500))
        .seed(3)
        .build()
        .unwrap();
    let mut sim = DistributedSystem::new(cfg.clone());
    for (i, u) in updates.iter().enumerate() {
        sim.submit_at(VirtualTime(i as u64 * 50), *u);
    }
    sim.run_until_quiescent();
    sim.flush_all();
    sim.run_until_quiescent();
    let sim_stocks: Vec<Volume> =
        (0..2).map(|p| sim.stock(SiteId(0), ProductId(p))).collect();

    // Live run, strictly sequential.
    let actors = SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    let runner: LiveRunner<Accelerator> = LiveRunner::spawn(actors, 3);
    for u in &updates {
        runner.inject(u.site, Input::Update(*u));
        let _ = wait_for_outcomes(&runner, 1);
    }
    settle(&runner, 3);
    let (actors, _, _) = runner.shutdown();
    for p in 0..2u32 {
        for a in &actors {
            assert_eq!(
                a.db().stock(ProductId(p)).unwrap(),
                sim_stocks[p as usize],
                "live and simulated runs disagree on product{p}"
            );
        }
    }
}

#[test]
fn live_system_survives_a_peer_kill() {
    let (_cfg, runner) = spawn(3, 2, 9_000, 21);
    // Fail-stop the maker; the retailers keep selling from their AV.
    runner.kill(SiteId(0));
    std::thread::sleep(Duration::from_millis(20));
    let per_site = 50usize;
    for i in 0..per_site as u64 {
        for s in 1..3u32 {
            runner.inject(
                SiteId(s),
                Input::Update(UpdateRequest::new(
                    SiteId(s),
                    ProductId((i % 2) as u32),
                    Volume(-4),
                )),
            );
        }
    }
    let outcomes = wait_for_outcomes(&runner, per_site * 2);
    let (actors, counters, _) = runner.shutdown();
    assert_eq!(
        outcomes.iter().filter(|(_, _, o)| o.is_committed()).count(),
        per_site * 2,
        "retailer autonomy survives the maker's death"
    );
    // The two live replicas agree with each other.
    for p in 0..2u32 {
        assert_eq!(
            actors[1].db().stock(ProductId(p)).unwrap(),
            actors[2].db().stock(ProductId(p)).unwrap()
        );
    }
    // Propagation to the dead site was dropped, not delivered.
    assert!(counters.dropped_messages() > 0);
}
