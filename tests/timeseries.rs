//! Integration suite for the windowed time-series plane: ring-rollover
//! semantics under a real workload, histogram delta-merge associativity,
//! the byte-identity contract for same-seed series (exact on the sim
//! clock, content-exact on the wall-clocked threads transport), and the
//! watchdog's fire-then-dump path on a seeded staleness scenario.

mod common;

use avdb::core::Accelerator;
use avdb::prelude::*;
use avdb::simnet::LiveRunner;
use avdb::telemetry::{HistogramSnapshot, Registry, SeriesRecorder, SeriesSnapshot};
use common::{assert_oracle_sim, settle_sim, wait_for_outcomes, Submissions};
use std::collections::BTreeMap;
use std::time::Duration;

const P0: ProductId = ProductId(0);

/// Sums each counter's deltas across every recorded window — the series
/// plane's reconstruction of a counter's total.
fn window_totals(snap: &SeriesSnapshot, prefix: &str) -> BTreeMap<String, u64> {
    let mut totals = BTreeMap::new();
    for w in &snap.windows {
        for (name, delta) in &w.counters {
            if name.starts_with(prefix) {
                *totals.entry(name.clone()).or_insert(0) += delta;
            }
        }
    }
    totals
}

/// A fresh per-test dump directory under the system temp dir.
fn dump_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("avdb-series-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------- ring

/// Under a long workload the per-site ring keeps only the newest
/// `DEFAULT_SERIES_RING_CAPACITY` windows: the oldest are evicted, the
/// survivors stay in strictly increasing window order.
#[test]
fn ring_rollover_keeps_only_the_newest_windows_under_load() {
    let window = 10u64;
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(9_000))
        .series_window_ticks(window)
        .seed(21)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    // One base-site deposit per window for ~90 windows: every window has
    // content, so far more windows roll than the ring can hold.
    for i in 0..90u64 {
        sys.submit_at(VirtualTime(i * window + 1), UpdateRequest::new(SiteId(0), P0, Volume(2)));
    }
    sys.run_until_quiescent();
    sys.drain_outcomes();

    let snap = sys.accelerator(SiteId(0)).series_snapshot().expect("series plane on");
    assert_eq!(
        snap.windows.len(),
        avdb::telemetry::DEFAULT_SERIES_RING_CAPACITY,
        "ring filled and bounded"
    );
    assert!(snap.windows[0].index > 0, "oldest windows were evicted");
    for pair in snap.windows.windows(2) {
        assert!(pair[0].index < pair[1].index, "ring stays ordered after rollover");
    }
    // The surviving tail still carries the workload's counter.
    assert!(window_totals(&snap, "update.committed")["update.committed"] > 0);
}

// ----------------------------------------------------------- histograms

/// Per-window histogram deltas are mergeable in any grouping: folding
/// them left-to-right, right-to-left, or pre-merged in pairs must all
/// reproduce the full-range snapshot exactly.
#[test]
fn histogram_window_merge_is_associative_and_lossless() {
    let mut reg = Registry::new();
    let mut rec = SeriesRecorder::new(10);
    let samples: [&[u64]; 4] = [&[3, 900], &[7], &[31, 5_000, 12], &[1, 1, 64_000]];
    for (w, batch) in samples.iter().enumerate() {
        for v in *batch {
            reg.observe("lat.us", *v);
        }
        assert!(rec.roll((w as u64 + 1) * 10, &mut reg).recorded);
    }
    let snap = rec.snapshot(&reg);
    let deltas: Vec<&HistogramSnapshot> =
        snap.windows.iter().map(|w| &w.histograms["lat.us"]).collect();
    assert_eq!(deltas.len(), 4);

    let fold = |order: &[usize]| {
        let mut acc = HistogramSnapshot::default();
        for &i in order {
            acc.merge(deltas[i]);
        }
        acc
    };
    let left = fold(&[0, 1, 2, 3]);
    let right = fold(&[3, 2, 1, 0]);
    let mut pairs = fold(&[0, 1]);
    pairs.merge(&fold(&[2, 3]));

    let full = reg.histogram("lat.us").unwrap().snapshot();
    assert_eq!(left, full, "left fold reproduces the full range");
    assert_eq!(right, full, "merge is order-independent");
    assert_eq!(pairs, full, "merge is associative under regrouping");
}

// ------------------------------------------------- sim byte-identity

/// One seeded lossy sim run's series plane, serialized site by site.
fn sim_series_fingerprint(seed: u64) -> String {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(600))
        .drop_probability(0.05)
        .series_window_ticks(50)
        .seed(seed)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    for i in 0..80u64 {
        let site = SiteId((i % 3) as u32);
        let delta = if site == SiteId::BASE { Volume(9) } else { Volume(-6) };
        sys.submit_at(VirtualTime(i * 7), UpdateRequest::new(site, ProductId((i % 2) as u32), delta));
    }
    sys.run_until_quiescent();
    settle_sim(&mut sys);
    sys.drain_outcomes();
    let mut out = String::new();
    for site in SiteId::all(3) {
        let snap = sys.accelerator(site).series_snapshot().expect("series plane on");
        assert!(!snap.windows.is_empty(), "{site} recorded at least one window");
        out.push_str(&serde_json::to_string(&snap).unwrap());
    }
    out
}

/// Under the sim clock the series plane is part of the determinism
/// contract: same seed, same windows, same bytes — including window
/// boundaries, per-window deltas, and histogram buckets.
#[test]
fn sim_series_scope_is_byte_identical_across_same_seed_runs() {
    let a = sim_series_fingerprint(404);
    assert_eq!(a, sim_series_fingerprint(404), "same seed ⇒ identical series bytes");
    assert_ne!(a, sim_series_fingerprint(405), "different seed ⇒ different series");
}

// ------------------------------------------- threads closed-loop runs

/// One closed-loop threads run: per-site protocol-counter totals as the
/// series plane reconstructed them, plus the registry's own totals.
fn threads_series_totals(seed: u64) -> Vec<(BTreeMap<String, u64>, BTreeMap<String, u64>)> {
    let window_ms = 25u64;
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(100_000))
        .series_window_ticks(window_ms)
        .seed(seed)
        .build()
        .unwrap();
    let actors: Vec<Accelerator> =
        SiteId::all(3).map(|s| Accelerator::new(s, &cfg)).collect();
    let runner = LiveRunner::spawn(actors, seed);
    // Strictly sequential closed loop: one update in flight at a time
    // keeps the protocol counters scheduling-independent.
    for i in 0..24u64 {
        let site = SiteId((i % 3) as u32);
        let delta = if site == SiteId::BASE { Volume(5) } else { Volume(-3) };
        runner.inject(site, avdb::core::Input::Update(UpdateRequest::new(site, ProductId((i % 2) as u32), delta)));
        wait_for_outcomes(&runner, 1);
    }
    // Let the window timers fire past the last activity so the final
    // deltas are rolled into the ring before shutdown.
    std::thread::sleep(Duration::from_millis(window_ms as u64 * 8));
    let (actors, _, _) = runner.shutdown();

    actors
        .iter()
        .map(|acc| {
            let snap = acc.series_snapshot().expect("series plane on");
            assert!(!snap.windows.is_empty(), "site recorded at least one window");
            let reconstructed = window_totals(&snap, "update.");
            let registry: BTreeMap<String, u64> = acc
                .registry()
                .snapshot()
                .counters
                .into_iter()
                .filter(|(name, _)| name.starts_with("update."))
                .collect();
            (reconstructed, registry)
        })
        .collect()
}

/// On the threads transport virtual time is wall-clock milliseconds, so
/// window *placement* is timing-dependent — but the windowed deltas must
/// still be lossless (summing them reproduces the registry totals) and
/// the closed loop makes the protocol counters themselves replay
/// exactly, so the reconstructed totals are byte-identical across
/// same-seed runs.
#[test]
fn threads_closed_loop_series_content_replays_exactly() {
    let first = threads_series_totals(5);
    for (site, (reconstructed, registry)) in first.iter().enumerate() {
        assert_eq!(
            reconstructed, registry,
            "site {site}: window deltas sum to the registry totals"
        );
        assert!(!reconstructed.is_empty(), "site {site} saw update traffic");
    }
    let second = threads_series_totals(5);
    let a: Vec<&BTreeMap<String, u64>> = first.iter().map(|(r, _)| r).collect();
    let b: Vec<&BTreeMap<String, u64>> = second.iter().map(|(r, _)| r).collect();
    assert_eq!(
        serde_json::to_string(&a).unwrap(),
        serde_json::to_string(&b).unwrap(),
        "closed-loop series content is byte-identical across same-seed runs"
    );
}

// ------------------------------------------------------------ watchdog

/// One seeded staleness-spike run: site 1 is cut off from incoming
/// traffic, then forced into repeated AV consultations on knowledge that
/// only grows staler. Returns (site-1 series bytes, watchdog firings,
/// flight dumps on disk).
fn staleness_spike_run(seed: u64, tag: &str) -> (String, u64, usize) {
    let window = 20u64; // staleness bound = 4 × window = 80 ticks
    let dir = dump_dir(tag);
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(90))
        .series_window_ticks(window)
        .seed(seed)
        .build()
        .unwrap();
    let actors: Vec<Accelerator> = SiteId::all(3)
        .map(|s| {
            let mut a = Accelerator::new(s, &cfg);
            a.enable_flight_dump(dir.clone());
            a
        })
        .collect();
    let mut sys = DistributedSystem::from_actors(cfg, actors);
    // Nothing reaches site 1: its knowledge of both peers freezes at t=0
    // and every grant sent back to it is dropped.
    sys.sever_link(SiteId(0), SiteId(1));
    sys.sever_link(SiteId(2), SiteId(1));

    let mut subs = Submissions::new();
    // Each -50 overdraws site 1's local AV share (30), forcing the
    // selecting step to consult peer knowledge that is now 150+ ticks
    // stale — far past the watchdog's 80-tick bound — window after
    // window.
    for i in 0..5u64 {
        subs.submit_at(
            &mut sys,
            VirtualTime(150 + i * window),
            UpdateRequest::new(SiteId(1), P0, Volume(-50)),
        );
    }
    sys.run_until(VirtualTime(400));

    // The watchdog must have fired — and dumped the flight recorder —
    // while the run was still healthy, before any oracle check.
    let fired = sys.accelerator(SiteId(1)).registry().counter("series.watchdog.fired");
    assert!(fired > 0, "staleness watchdog fired during the partition");
    let dumps = std::fs::read_dir(&dir)
        .expect("dump dir created by the firing")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().starts_with("flight-s1-"))
        .count();
    assert!(dumps > 0, "each firing wrote a site-1 flight dump");

    // Heal, settle, and hand the whole run to the conformance oracle:
    // the firings preceded any violation (there is none).
    sys.heal_link(SiteId(0), SiteId(1));
    sys.heal_link(SiteId(2), SiteId(1));
    sys.run_until_quiescent();
    settle_sim(&mut sys);
    let outcomes = sys.drain_outcomes();
    let series =
        serde_json::to_string(&sys.accelerator(SiteId(1)).series_snapshot().unwrap()).unwrap();
    assert_oracle_sim(&sys, subs, outcomes, "watchdog-staleness");

    let _ = std::fs::remove_dir_all(&dir);
    (series, fired, dumps)
}

/// The watchdog fires on the seeded staleness spike, dumps the flight
/// recorder before any oracle violation, and does all of it
/// deterministically: same seed, same firings, same series bytes.
#[test]
fn watchdog_fires_and_dumps_flight_deterministically() {
    let (series_a, fired_a, dumps_a) = staleness_spike_run(11, "wd-a");
    let (series_b, fired_b, dumps_b) = staleness_spike_run(11, "wd-b");
    assert_eq!(series_a, series_b, "same seed ⇒ identical series around the firing");
    assert_eq!(fired_a, fired_b, "same seed ⇒ same number of firings");
    assert_eq!(dumps_a, dumps_b);
}
