//! Shared harness for the integration suite: a submission log that feeds
//! the conformance oracle, outcome pumps for the live transports, and
//! settle helpers — one copy instead of one per test file.
#![allow(dead_code)]

use avdb::core::{export_from_accelerators, Accelerator, DistributedSystem, Input};
use avdb::oracle::{Observation, SubmittedRequest};
use avdb::prelude::*;
use avdb::simnet::{Counters, CountersSnapshot, LiveRunner, MessageLog, TcpMesh};
use avdb::telemetry::RunExport;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// The pump surface the thread-mesh and TCP transports share.
pub trait Transport {
    /// Hands an input to a site's mailbox.
    fn inject(&self, site: SiteId, input: Input);
    /// Drains whatever outcomes have been produced so far.
    fn drain(&self) -> Vec<(VirtualTime, SiteId, UpdateOutcome)>;
    /// Shuts the mesh down and hands back the actors, network counters,
    /// and message log — everything a telemetry export needs.
    fn finish(self) -> (Vec<Accelerator>, Counters, MessageLog)
    where
        Self: Sized;
}

impl Transport for LiveRunner<Accelerator> {
    fn inject(&self, site: SiteId, input: Input) {
        LiveRunner::inject(self, site, input);
    }
    fn drain(&self) -> Vec<(VirtualTime, SiteId, UpdateOutcome)> {
        self.drain_outputs()
    }
    fn finish(self) -> (Vec<Accelerator>, Counters, MessageLog) {
        let log = self.message_log();
        let (actors, counters, _) = self.shutdown();
        (actors, counters, log)
    }
}

impl Transport for TcpMesh<Accelerator> {
    fn inject(&self, site: SiteId, input: Input) {
        TcpMesh::inject(self, site, input);
    }
    fn drain(&self) -> Vec<(VirtualTime, SiteId, UpdateOutcome)> {
        self.drain_outputs()
    }
    fn finish(self) -> (Vec<Accelerator>, Counters, MessageLog) {
        let log = self.message_log();
        let (actors, counters, _) = self.shutdown();
        (actors, counters, log)
    }
}

/// Runs one update schedule through a live transport, settles, shuts
/// down, and assembles the run's telemetry export.
pub fn export_live<T: Transport>(
    name: &str,
    cfg: &SystemConfig,
    mesh: T,
    schedule: &[UpdateRequest],
) -> RunExport {
    for req in schedule {
        mesh.inject(req.site, Input::Update(*req));
    }
    let mut outcomes = wait_for_outcomes(&mesh, schedule.len());
    settle_live(&mesh, cfg.n_sites);
    outcomes.extend(mesh.drain());
    let (actors, counters, log) = mesh.finish();
    export_from_accelerators(
        name,
        cfg,
        &actors,
        log.events(),
        counters.registry().snapshot(),
        &outcomes,
    )
}

/// Runs one timed schedule through the deterministic simulator, settles,
/// and assembles the run's telemetry export.
pub fn export_sim(
    cfg: &SystemConfig,
    schedule: &[(VirtualTime, UpdateRequest)],
) -> RunExport {
    let mut sys = DistributedSystem::new(cfg.clone());
    sys.enable_trace();
    for (at, req) in schedule {
        sys.submit_at(*at, *req);
    }
    sys.run_until_quiescent();
    settle_sim(&mut sys);
    let outcomes = sys.drain_outcomes();
    sys.export_telemetry(&outcomes)
}

/// The causal *shape* of every update trace in an export: the sorted
/// span-name multiset per trace (auxiliary replication traces excluded).
/// Transports schedule differently, so span ids and times differ between
/// runs — but for the same committed update, the set of phases recorded
/// across all sites must not.
pub fn trace_shapes(export: &RunExport) -> BTreeMap<u64, Vec<String>> {
    let mut shapes: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    for s in &export.spans {
        if avdb::telemetry::is_aux_trace(s.trace) {
            continue;
        }
        shapes.entry(s.trace).or_default().push(s.name.clone());
    }
    for names in shapes.values_mut() {
        names.sort();
    }
    shapes
}

/// Records every injected update so the run can be replayed against the
/// conformance oracle afterwards.
#[derive(Default)]
pub struct Submissions {
    log: Vec<SubmittedRequest>,
    next_label: u64,
}

impl Submissions {
    pub fn new() -> Self {
        Submissions::default()
    }

    /// Records and submits one update to the simulator.
    pub fn submit_at(&mut self, sys: &mut DistributedSystem, at: VirtualTime, req: UpdateRequest) {
        self.log.push(SubmittedRequest::single(at, &req));
        sys.submit_at(at, req);
    }

    /// Records and injects one update into a live transport. Live runs
    /// have no virtual clock; a global injection counter stands in (the
    /// oracle only needs per-site injection order).
    pub fn inject(&mut self, transport: &impl Transport, req: UpdateRequest) {
        self.log.push(SubmittedRequest::single(VirtualTime(self.next_label), &req));
        self.next_label += 1;
        transport.inject(req.site, Input::Update(req));
    }

    pub fn take(self) -> Vec<SubmittedRequest> {
        self.log
    }
}

/// Polls a live transport until `expected` outcomes arrived (30s cap).
pub fn wait_for_outcomes(
    transport: &impl Transport,
    expected: usize,
) -> Vec<(VirtualTime, SiteId, UpdateOutcome)> {
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut outcomes = Vec::new();
    while outcomes.len() < expected {
        assert!(
            Instant::now() < deadline,
            "timed out with {}/{expected} outcomes",
            outcomes.len()
        );
        outcomes.extend(transport.drain());
        std::thread::sleep(Duration::from_millis(2));
    }
    outcomes
}

/// A few anti-entropy rounds on a live transport, with real time in
/// between for the acks to come back.
pub fn settle_live(transport: &impl Transport, n_sites: usize) {
    for _ in 0..3 {
        for site in SiteId::all(n_sites) {
            transport.inject(site, Input::FlushPropagation);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Settles a simulator run: anti-entropy rounds until replicas agree
/// (one round suffices on reliable links; retries cover lossy ones).
pub fn settle_sim(sys: &mut DistributedSystem) {
    for _ in 0..50 {
        sys.flush_all();
        sys.run_until_quiescent();
        if sys.check_convergence().is_ok() {
            break;
        }
    }
}

/// Captures a settled simulator run for the oracle.
pub fn observe_sim(
    sys: &DistributedSystem,
    submissions: Submissions,
    outcomes: Vec<(VirtualTime, SiteId, UpdateOutcome)>,
) -> Observation {
    Observation::from_system(sys, submissions.take(), outcomes)
}

/// Runs the full conformance oracle over a settled simulator run.
pub fn assert_oracle_sim(
    sys: &DistributedSystem,
    submissions: Submissions,
    outcomes: Vec<(VirtualTime, SiteId, UpdateOutcome)>,
    context: &str,
) {
    avdb::oracle::check(&observe_sim(sys, submissions, outcomes)).assert_ok(context);
}

/// Runs the conformance oracle over a live run from the actors the
/// transport returned at shutdown. Pass only the surviving actors when
/// the test killed some — the oracle checks whatever it observes.
pub fn assert_oracle_live(
    cfg: &SystemConfig,
    actors: &[Accelerator],
    submissions: Submissions,
    outcomes: Vec<(VirtualTime, SiteId, UpdateOutcome)>,
    network: CountersSnapshot,
    context: &str,
) {
    avdb::oracle::check(&Observation::from_accelerators(
        cfg.clone(),
        actors,
        submissions.take(),
        outcomes,
        network,
    ))
    .assert_ok(context);
}
