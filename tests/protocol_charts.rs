//! Executable reproductions of the paper's protocol diagrams: the
//! message-sequence charts of Fig. 3 (Delay Update), Fig. 4 (Delay Update
//! with AV transfer) and Fig. 5 (Immediate Update) are asserted message
//! for message against the implementation's trace.

use avdb::prelude::*;
use avdb::simnet::render_sequence;

fn charted_system() -> DistributedSystem {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(90)) // uniform AV split: 30 each
        .non_regular_products(1, Volume(30))
        // Large batch so propagation traffic stays out of the charts
        // (the paper's figures show only the protocol messages).
        .propagation_batch(1_000)
        .seed(1)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    sys.enable_trace();
    sys
}

const REG: ProductId = ProductId(0);
const NONREG: ProductId = ProductId(1);

/// Fig. 3: Delay Update with sufficient local AV — the chart shows the
/// accelerator talking only to its local DB; *no* messages cross the
/// network before the update completes.
#[test]
fn fig3_delay_update_is_purely_local() {
    let mut sys = charted_system();
    sys.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(1), REG, Volume(-20)));
    sys.run_until_quiescent();
    assert!(
        sys.trace().events().is_empty(),
        "Fig. 3 chart has no remote messages; got:\n{}",
        render_sequence(sys.trace())
    );
    let outcomes = sys.drain_outcomes();
    assert!(outcomes[0].2.is_committed());
    assert_eq!(outcomes[0].0, VirtualTime(0), "completes at submission time");
}

/// Fig. 4: Delay Update with AV transfer — the chart shows one
/// request/grant exchange with another site, then completion at the
/// local site.
#[test]
fn fig4_delay_update_with_av_transfer_chart() {
    let mut sys = charted_system();
    // Site 1 holds 30; −40 leaves a shortage of 10. Grant-half of the
    // richest peer's 30 is 15, so held 30 + 15 = 45 ≥ 40 — one exchange
    // suffices.
    sys.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(1), REG, Volume(-40)));
    sys.run_until_quiescent();
    let seq = sys.trace().sequence();
    assert_eq!(
        seq,
        vec![
            (SiteId(1), SiteId(0), "av-request"),
            (SiteId(0), SiteId(1), "av-grant"),
        ],
        "Fig. 4 chart mismatch:\n{}",
        render_sequence(sys.trace())
    );
    let outcomes = sys.drain_outcomes();
    match &outcomes[0].2 {
        UpdateOutcome::Committed { kind: UpdateKind::Delay, correspondences: 1, .. } => {}
        other => panic!("expected Delay commit with 1 correspondence, got {other:?}"),
    }
}

/// Fig. 4 extended: when the first grant is insufficient, "It requests
/// again to other sites" — the chart gains a second request/grant pair.
#[test]
fn fig4_delay_update_requests_again_when_insufficient() {
    let mut sys = charted_system();
    // Need 60: hold 30, shortage 30 → site0 grants half of 30 = 15 →
    // still short 15 → site2 grants 15 → commit.
    sys.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(1), REG, Volume(-60)));
    sys.run_until_quiescent();
    let seq = sys.trace().sequence();
    assert_eq!(
        seq,
        vec![
            (SiteId(1), SiteId(0), "av-request"),
            (SiteId(0), SiteId(1), "av-grant"),
            (SiteId(1), SiteId(2), "av-request"),
            (SiteId(2), SiteId(1), "av-grant"),
        ],
        "extended Fig. 4 chart mismatch:\n{}",
        render_sequence(sys.trace())
    );
}

/// Fig. 5: Immediate Update — "it locks the data at the local DB and it
/// also sends the lock request to the other accelerators simultaneously.
/// Then the operations for update are processed at all the sites and
/// ready and commitment messages are exchanged." The chart: prepare to
/// both peers, votes back, decision to both, done back — and the
/// coordinator "judges the completion … with the message from the
/// accelerator at the base DB".
#[test]
fn fig5_immediate_update_chart() {
    let mut sys = charted_system();
    sys.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(1), NONREG, Volume(-5)));
    sys.run_until_quiescent();
    let seq = sys.trace().sequence();
    assert_eq!(
        seq,
        vec![
            // lock requests, simultaneously to all other accelerators
            (SiteId(1), SiteId(0), "imm-prepare"),
            (SiteId(1), SiteId(2), "imm-prepare"),
            // ready messages
            (SiteId(0), SiteId(1), "imm-vote"),
            (SiteId(2), SiteId(1), "imm-vote"),
            // commitment messages
            (SiteId(1), SiteId(0), "imm-decision"),
            (SiteId(1), SiteId(2), "imm-decision"),
            // completion acknowledgements (base first in site order)
            (SiteId(0), SiteId(1), "imm-done"),
            (SiteId(2), SiteId(1), "imm-done"),
        ],
        "Fig. 5 chart mismatch:\n{}",
        render_sequence(sys.trace())
    );
    let outcomes = sys.drain_outcomes();
    match &outcomes[0].2 {
        UpdateOutcome::Committed {
            kind: UpdateKind::Immediate,
            correspondences: 4,
            completed_at,
            ..
        } => {
            // Completion is judged by the base's done after four hops:
            // prepare t=1, vote t=2, decision t=3, done t=4.
            assert_eq!(*completed_at, VirtualTime(4));
        }
        other => panic!("expected Immediate commit, got {other:?}"),
    }
}

/// The charts above compose: a Delay and an Immediate update interleaved
/// keep their own charts (no cross-talk in the trace).
#[test]
fn charts_compose_without_crosstalk() {
    let mut sys = charted_system();
    sys.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(1), REG, Volume(-20)));
    sys.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(2), NONREG, Volume(-5)));
    sys.run_until_quiescent();
    let seq = sys.trace().sequence();
    // The Delay update contributes nothing; the Immediate chart is intact
    // with coordinator site 2.
    assert_eq!(seq.len(), 8);
    assert!(seq.iter().all(|(_, _, k)| k.starts_with("imm-")));
    let outcomes = sys.drain_outcomes();
    assert_eq!(outcomes.iter().filter(|(_, _, o)| o.is_committed()).count(), 2);
}
