//! Staleness-instrument tests: the per-datum divergence gauges, the
//! AV-knowledge staleness gauges, and the time-to-convergence histogram
//! must be exact, deterministic functions of the (seeded) run — and the
//! divergence gauges must always return to zero once replicas converge.

mod common;

use avdb::prelude::*;
use common::settle_sim;
use proptest::prelude::*;

fn three_sites(seed: u64) -> DistributedSystem {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(90))
        .seed(seed)
        .build()
        .unwrap();
    DistributedSystem::new(cfg)
}

const P0: ProductId = ProductId(0);

/// A local Delay commit leaves its unacked delta visible as divergence at
/// the origin, and the gauge returns to zero exactly when the acks land.
/// The convergence histogram at each peer records the apply lag in ticks.
#[test]
fn divergence_gauge_pins_exact_values() {
    let mut sys = three_sites(11);
    // Covered by site 1's local AV share (30): commits at t=0, propagates.
    sys.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(1), P0, Volume(-20)));
    sys.run_until(VirtualTime(0));
    // Committed locally, acks not yet back: 20 units un-replicated.
    let origin = sys.accelerator(SiteId(1)).registry();
    assert_eq!(origin.gauge("repl.divergence.p0"), -20);
    assert_eq!(origin.gauge("repl.queue.depth"), 1);
    assert_eq!(sys.status(SiteId(1)).av[0].divergence, -20);

    sys.run_until_quiescent();
    // Acks landed: the origin knows every replica has the delta.
    let origin = sys.accelerator(SiteId(1)).registry();
    assert_eq!(origin.gauge("repl.divergence.p0"), 0);
    assert_eq!(origin.gauge("repl.queue.depth"), 0);
    // Each peer applied the delta one latency tick after the commit.
    for peer in [SiteId(0), SiteId(2)] {
        let snap = sys.accelerator(peer).registry().snapshot();
        let h = snap.histograms.get("repl.convergence.ticks").expect("peer applied a delta");
        assert_eq!((h.count, h.sum, h.max), (1, 1, 1), "{peer} apply lag");
    }
    sys.drain_outcomes();
}

/// An AV shortage forces `selecting` to consult PeerKnowledge; the
/// staleness gauge records how old each consulted figure was, in ticks,
/// at the moment it was used.
#[test]
fn knowledge_staleness_gauge_pins_exact_values() {
    let mut sys = three_sites(11);
    // Site 1 holds 30 AV but needs 50: asks site 0 (tie → lower id) using
    // a figure last refreshed at t=0, then asks site 2 two ticks later
    // (request out t=10, grant back t=12).
    sys.submit_at(VirtualTime(10), UpdateRequest::new(SiteId(1), P0, Volume(-50)));
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    assert!(outcomes[0].2.is_committed());
    let reg = sys.accelerator(SiteId(1)).registry();
    assert_eq!(reg.gauge("knowledge.staleness.s0"), 10, "site 0's figure dated from t=0");
    assert_eq!(reg.gauge("knowledge.staleness.s2"), 12, "site 2 consulted after one round trip");
    let snap = reg.snapshot();
    let h = snap.histograms.get("select.staleness.ticks").expect("two selections ran");
    assert_eq!(h.count, 2);
    assert_eq!(h.sum, 22);
}

/// One faulted (lossy) run's staleness/convergence instruments, rendered
/// to bytes. Two runs with the same seed must agree byte-for-byte — the
/// determinism contract for the whole introspection plane.
fn lossy_run_fingerprint(seed: u64) -> String {
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(600))
        .drop_probability(0.05)
        .seed(seed)
        .build()
        .unwrap();
    let mut sys = DistributedSystem::new(cfg);
    for i in 0..80u64 {
        let site = SiteId((i % 3) as u32);
        let delta = if site == SiteId::BASE { Volume(9) } else { Volume(-6) };
        sys.submit_at(VirtualTime(i * 3), UpdateRequest::new(site, ProductId((i % 2) as u32), delta));
    }
    sys.run_until_quiescent();
    settle_sim(&mut sys);
    sys.check_convergence().expect("anti-entropy repairs the losses");
    sys.drain_outcomes();
    let mut out = String::new();
    for site in SiteId::all(3) {
        out.push_str(&sys.metrics_text(site));
        out.push_str(&serde_json::to_string(&sys.status(site)).unwrap());
    }
    out.push_str(&sys.flight_dump("fingerprint").to_json());
    out
}

#[test]
fn lossy_run_stats_are_byte_identical_across_same_seed_runs() {
    let a = lossy_run_fingerprint(404);
    let b = lossy_run_fingerprint(404);
    assert_eq!(a, b, "same seed ⇒ identical instruments, statuses, and flight dumps");
    // And the instruments actually fired: losses forced retransmissions,
    // so at least one site observed a convergence lag above the minimum.
    assert!(a.contains("avdb_repl_convergence_ticks_count"));
    assert_ne!(a, lossy_run_fingerprint(405), "different seed ⇒ different stats");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whenever the run converges (which settling guarantees here), every
    /// divergence gauge at every site reads zero: no retained delta means
    /// no datum differs from its replicas.
    #[test]
    fn prop_divergence_zero_at_convergence(
        seed in 0u64..500,
        n_updates in 1usize..60,
        drop_pct in 0u32..8,
    ) {
        let cfg = SystemConfig::builder()
            .sites(3)
            .regular_products(2, Volume(400))
            .drop_probability(f64::from(drop_pct) / 100.0)
            .seed(seed)
            .build()
            .unwrap();
        let mut sys = DistributedSystem::new(cfg);
        for i in 0..n_updates as u64 {
            let site = SiteId((i % 3) as u32);
            let delta = if site == SiteId::BASE { Volume(11) } else { Volume(-7) };
            sys.submit_at(VirtualTime(i * 2), UpdateRequest::new(site, ProductId((i % 2) as u32), delta));
        }
        sys.run_until_quiescent();
        // Settle until stocks converge AND every ack has landed: a dropped
        // ack leaves the origin retaining (and re-sending) a delta its
        // peers already applied, which the gauge conservatively counts as
        // divergence until the retransmission round confirms it.
        for _ in 0..200 {
            sys.flush_all();
            sys.run_until_quiescent();
            let drained = SiteId::all(3)
                .all(|s| sys.accelerator(s).registry().gauge("repl.queue.depth") == 0);
            if drained && sys.check_convergence().is_ok() {
                break;
            }
        }
        prop_assert!(sys.check_convergence().is_ok(), "settling converges under mild loss");
        for site in SiteId::all(3) {
            let status = sys.status(site);
            prop_assert_eq!(status.repl_queue_depth, 0);
            for row in &status.av {
                prop_assert_eq!(row.divergence, 0, "site {} product {}", site.0, row.product);
            }
            let reg = sys.accelerator(site).registry();
            for p in 0..2 {
                prop_assert_eq!(reg.gauge(&format!("repl.divergence.p{p}")), 0);
            }
        }
    }
}
