//! Adversarial fault schedules against the proposed system: repeated
//! crashes, partitions, and crash-during-commit races. After every storm
//! the run settles and the shared conformance oracle verifies the full
//! invariant set — convergence, AV conservation, escrow safety, outcome
//! accounting.

mod common;

use avdb::prelude::*;
use avdb::simnet::LinkFilter;
use common::{assert_oracle_sim, settle_sim, Submissions};

fn system(seed: u64) -> DistributedSystem {
    DistributedSystem::new(
        SystemConfig::builder()
            .sites(3)
            .regular_products(3, Volume(600))
            .non_regular_products(1, Volume(100))
            .seed(seed)
            .build()
            .unwrap(),
    )
}

/// Settles anti-entropy and spot-checks the two classic invariants; the
/// oracle re-verifies both (and more) at each test's end.
fn settle_and_check(sys: &mut DistributedSystem) {
    settle_sim(sys);
    sys.check_convergence().expect("replicas converge after anti-entropy");
    for p in 0..3u32 {
        if let Err((e, a)) = sys.check_av_conservation(ProductId(p)) {
            panic!("product{p}: expected AV {e}, got {a}");
        }
    }
}

#[test]
fn crash_storm_every_site_twice() {
    let mut sys = system(21);
    let mut subs = Submissions::new();
    let mut t = 0u64;
    for round in 0..2u64 {
        for victim in 0..3u32 {
            // Load before, during and after each outage.
            for i in 0..12u64 {
                let site = SiteId((i % 3) as u32);
                let delta = if site == SiteId::BASE { Volume(9) } else { Volume(-6) };
                subs.submit_at(
                    &mut sys,
                    VirtualTime(t + i * 5),
                    UpdateRequest::new(site, ProductId((i % 3) as u32), delta),
                );
            }
            sys.crash_at(VirtualTime(t + 20), SiteId(victim));
            sys.recover_at(VirtualTime(t + 45), SiteId(victim));
            t += 80 + round;
        }
    }
    settle_and_check(&mut sys);
    let recoveries: u64 = SiteId::all(3)
        .map(|s| sys.accelerator(s).stats().recoveries)
        .sum();
    assert_eq!(recoveries, 6);
    let outcomes = sys.drain_outcomes();
    assert_oracle_sim(&sys, subs, outcomes, "crash-storm");
}

#[test]
fn partition_isolates_then_heals() {
    let mut sys = system(22);
    let mut subs = Submissions::new();
    // Partition retailers away from the maker.
    sys.set_partition(LinkFilter::partition(vec![
        vec![SiteId(0)],
        vec![SiteId(1), SiteId(2)],
    ]));
    // Delay updates inside each island keep working from local AV.
    subs.submit_at(&mut sys, VirtualTime(0), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-50)));
    subs.submit_at(&mut sys, VirtualTime(0), UpdateRequest::new(SiteId(0), ProductId(1), Volume(40)));
    // An Immediate update cannot reach the other island → timeout abort.
    subs.submit_at(&mut sys, VirtualTime(1), UpdateRequest::new(SiteId(2), ProductId(3), Volume(-5)));
    sys.run_until_quiescent();
    let mut outcomes = sys.drain_outcomes();
    let delay_commits = outcomes
        .iter()
        .filter(|(_, _, o)| matches!(o, UpdateOutcome::Committed { kind: UpdateKind::Delay, .. }))
        .count();
    assert_eq!(delay_commits, 2, "autonomy survives the partition");
    let imm_aborts = outcomes.iter().filter(|(_, _, o)| !o.is_committed()).count();
    assert_eq!(imm_aborts, 1, "Immediate needs all sites");

    // Retailer 1 can still pull AV from retailer 2 inside the island.
    let t = sys.now().after(1);
    subs.submit_at(&mut sys, t, UpdateRequest::new(SiteId(1), ProductId(0), Volume(-90)));
    sys.run_until_quiescent();
    let island = sys.drain_outcomes();
    assert!(island[0].2.is_committed(), "intra-island AV transfer works");
    outcomes.extend(island);

    // Heal; everything reconciles.
    sys.heal_partition();
    settle_and_check(&mut sys);
    // And Immediate works again.
    let t = sys.now().after(1);
    subs.submit_at(&mut sys, t, UpdateRequest::new(SiteId(2), ProductId(3), Volume(-5)));
    sys.run_until_quiescent();
    let healed = sys.drain_outcomes();
    assert!(healed[0].2.is_committed());
    outcomes.extend(healed);
    assert_oracle_sim(&sys, subs, outcomes, "partition-heal");
}

#[test]
fn crash_between_prepare_and_decision_releases_locks() {
    let mut sys = system(23);
    let mut subs = Submissions::new();
    // Coordinator (site 1) will crash right after sending prepares: with
    // 1-tick latency, prepares arrive at t=11; crash the coordinator at
    // t=11 so votes return to a dead site.
    subs.submit_at(&mut sys, VirtualTime(10), UpdateRequest::new(SiteId(1), ProductId(3), Volume(-5)));
    sys.crash_at(VirtualTime(11), SiteId(1));
    sys.recover_at(VirtualTime(2_000), SiteId(1));
    sys.run_until_quiescent();
    // Participants must have timed out (presumed abort) and released the
    // record; no outcome was ever emitted for the orphaned txn.
    let mut outcomes = sys.drain_outcomes();
    assert!(outcomes.is_empty(), "orphaned immediate update yields no outcome");
    assert!(sys.all_idle(), "no site left holding protocol state");
    for site in SiteId::all(3) {
        assert_eq!(sys.stock(site, ProductId(3)), Volume(100), "no partial effect");
    }
    // The system remains fully usable afterwards.
    let t = sys.now().after(5);
    subs.submit_at(&mut sys, t, UpdateRequest::new(SiteId(2), ProductId(3), Volume(-5)));
    sys.run_until_quiescent();
    let retry = sys.drain_outcomes();
    assert!(retry[0].2.is_committed());
    outcomes.extend(retry);
    settle_and_check(&mut sys);
    // The oracle's accounting closes over the wiped-in-flight txn:
    // outcomes + wiped == injected.
    assert_oracle_sim(&sys, subs, outcomes, "crash-mid-2pc");
}

#[test]
fn crash_during_av_negotiation_keeps_conservation() {
    let mut sys = system(24);
    let mut subs = Submissions::new();
    // Drain site 1's own AV share (200), forcing the next decrement to
    // negotiate with peers; crash the *grantor* mid-negotiation.
    subs.submit_at(&mut sys, VirtualTime(0), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-200)));
    sys.run_until_quiescent();
    let mut outcomes = sys.drain_outcomes();
    // This one needs a grant from site 0 or 2; both crash right as the
    // request lands (t=21). The request dies with them.
    subs.submit_at(&mut sys, VirtualTime(20), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-50)));
    sys.crash_at(VirtualTime(21), SiteId(0));
    sys.crash_at(VirtualTime(21), SiteId(2));
    sys.recover_at(VirtualTime(400), SiteId(0));
    sys.recover_at(VirtualTime(400), SiteId(2));
    sys.run_until_quiescent();
    let second = sys.drain_outcomes();
    // The update either aborted (both grants lost) or committed (one
    // grant squeaked through before the crash tick) — both are legal;
    // what must NOT happen is AV vanishing.
    assert_eq!(second.len(), 1);
    outcomes.extend(second);
    settle_and_check(&mut sys);
    assert_oracle_sim(&sys, subs, outcomes, "crash-mid-negotiation");
}

#[test]
fn conventional_center_crash_vs_proposal_maker_crash() {
    use avdb::baseline::CentralizedSystem;
    // Identical load, identical crash of site 0 — compare survivors.
    // (The maker stays down for good, so replicas legitimately diverge;
    // this is a comparator experiment, not an oracle subject.)
    let cfg = SystemConfig::builder()
        .sites(3)
        .regular_products(2, Volume(500))
        .seed(25)
        .build()
        .unwrap();
    let schedule: Vec<(VirtualTime, UpdateRequest)> = (0..30u64)
        .map(|i| {
            let site = SiteId(1 + (i % 2) as u32);
            (
                VirtualTime(i * 4),
                UpdateRequest::new(site, ProductId((i % 2) as u32), Volume(-5)),
            )
        })
        .collect();

    let mut prop = DistributedSystem::new(cfg.clone());
    prop.crash_at(VirtualTime(0), SiteId(0));
    for (at, req) in &schedule {
        prop.submit_at(*at, *req);
    }
    prop.run_until_quiescent();
    let prop_committed = prop
        .drain_outcomes()
        .iter()
        .filter(|(_, _, o)| o.is_committed())
        .count();

    let mut conv = CentralizedSystem::new(cfg);
    conv.crash_at(VirtualTime(0), SiteId(0));
    for (at, req) in &schedule {
        conv.submit_at(*at, *req);
    }
    conv.run_until_quiescent();
    let conv_committed = conv
        .drain_outcomes()
        .iter()
        .filter(|(_, _, o)| o.is_committed())
        .count();

    assert_eq!(prop_committed, 30, "retailers are autonomous");
    assert_eq!(conv_committed, 0, "the center was everything");
}

#[test]
fn anti_entropy_heals_partition_loss_without_manual_flushes() {
    // With the periodic anti-entropy timer enabled, propagation lost to a
    // partition repairs itself — no harness-driven flush_all.
    let mut sys = DistributedSystem::new(
        SystemConfig::builder()
            .sites(3)
            .regular_products(2, Volume(600))
            .anti_entropy_interval(200)
            .seed(31)
            .build()
            .unwrap(),
    );
    let mut subs = Submissions::new();
    sys.set_partition(LinkFilter::partition(vec![
        vec![SiteId(0)],
        vec![SiteId(1), SiteId(2)],
    ]));
    subs.submit_at(&mut sys, VirtualTime(0), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-50)));
    subs.submit_at(&mut sys, VirtualTime(0), UpdateRequest::new(SiteId(0), ProductId(1), Volume(40)));
    sys.run_until(VirtualTime(100));
    // Propagation across the cut was dropped.
    assert_ne!(sys.stock(SiteId(0), ProductId(0)), sys.stock(SiteId(1), ProductId(0)));
    sys.heal_partition();
    // Let a couple of anti-entropy rounds fire. No flush_all here!
    sys.run_until(VirtualTime(700));
    sys.check_convergence().expect("anti-entropy alone must converge the replicas");
    sys.run_until_quiescent();
    let outcomes = sys.drain_outcomes();
    assert_oracle_sim(&sys, subs, outcomes, "anti-entropy-heal");
}

#[test]
fn anti_entropy_system_still_quiesces() {
    // The heartbeat must stop once every peer is caught up, or
    // run_until_quiescent would spin forever.
    let mut sys = DistributedSystem::new(
        SystemConfig::builder()
            .sites(3)
            .regular_products(1, Volume(300))
            .anti_entropy_interval(50)
            .seed(32)
            .build()
            .unwrap(),
    );
    let mut subs = Submissions::new();
    subs.submit_at(&mut sys, VirtualTime(0), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-10)));
    sys.run_until_quiescent(); // terminates ⇔ the heartbeat self-stops
    sys.check_convergence().unwrap();
    let outcomes = sys.drain_outcomes();
    assert!(outcomes[0].2.is_committed());
    assert_oracle_sim(&sys, subs, outcomes, "anti-entropy-quiesce");
}
