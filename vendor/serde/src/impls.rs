//! `Serialize`/`Deserialize` implementations for std types.

use crate::{DeError, Deserialize, Serialize, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

// ---------------------------------------------------------------- integers

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| DeError::msg(format!("{u} out of range for {}", stringify!($t))))?,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) => u64::try_from(*i)
                        .map_err(|_| DeError::msg(format!("{i} out of range for {}", stringify!($t))))?,
                    other => {
                        return Err(DeError::msg(format!(
                            "expected integer, found {}", other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::msg(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);
unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => Err(DeError::msg(format!(
                        "expected number, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

// ------------------------------------------------------------- fundamentals

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::msg(format!("expected char, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::msg(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---------------------------------------------------------------- sequences

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::msg(format!("expected array, found {}", other.kind()))),
        }
    }
}

// --------------------------------------------------------------------- maps

/// Turns a serialized key into the string JSON objects require.
fn key_to_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::Int(i) => i.to_string(),
        Value::UInt(u) => u.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

/// Rebuilds a key from its object-key string: first as a string, then
/// as an integer for numeric key types.
fn key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::Str(s.to_string())) {
        return Ok(k);
    }
    if let Ok(u) = s.parse::<u64>() {
        return K::from_value(&Value::UInt(u));
    }
    if let Ok(i) = s.parse::<i64>() {
        return K::from_value(&Value::Int(i));
    }
    Err(DeError::msg(format!("cannot rebuild map key from `{s}`")))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, found {}", other.kind()))),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::msg(format!("expected object, found {}", other.kind()))),
        }
    }
}

// ------------------------------------------------------------------- tuples

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::msg(format!(
                        "expected {LEN}-tuple, found {}", other.kind()
                    ))),
                }
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ------------------------------------------------------------------- Value

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
