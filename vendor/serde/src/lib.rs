//! Minimal serde-compatible facade, vendored so the workspace builds
//! offline. The data model is a single [`Value`] tree: `Serialize`
//! lowers a type into a `Value`, `Deserialize` rebuilds it from one.
//! The derive macros (in `serde_derive`) generate the same external
//! JSON shapes real serde produces for the subset this workspace uses:
//! newtype structs are transparent, named structs are objects, enums
//! are externally tagged (`"Unit"` / `{"Variant": ...}`).

pub mod de;
pub mod ser;
mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// New error with a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }

    /// Unknown enum variant error.
    pub fn unknown_variant(tag: &str, ty: &str) -> Self {
        DeError(format!("unknown variant `{tag}` for {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself into a [`Value`].
pub trait Serialize {
    /// Lower into the generic data model.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the generic data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

mod impls;
