//! The generic data model shared by `Serialize`/`Deserialize` and the
//! vendored `serde_json`.

/// A JSON-shaped value tree.
///
/// Integers keep full 64-bit precision (separate signed/unsigned
/// variants) so values near `i64::MAX`/`i64::MIN` round-trip exactly.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (used for negative numbers).
    Int(i64),
    /// Unsigned integer (used for non-negative numbers).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object: insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object; `None` for missing keys or
    /// non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}
