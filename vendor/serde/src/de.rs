//! Deserialization helpers used by generated code and `serde_json`.

use crate::{DeError, Deserialize, Value};

/// Marker for types deserializable without borrowing from the input.
/// In this vendored facade every `Deserialize` type qualifies.
pub trait DeserializeOwned: Deserialize {}
impl<T: Deserialize> DeserializeOwned for T {}

/// Expects an object, returning its fields.
pub fn as_object<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], DeError> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(DeError::msg(format!(
            "expected object for {ty}, found {}",
            other.kind()
        ))),
    }
}

/// Expects an array, returning its items.
pub fn as_array<'a>(v: &'a Value, ty: &str) -> Result<&'a [Value], DeError> {
    match v {
        Value::Array(items) => Ok(items),
        other => Err(DeError::msg(format!(
            "expected array for {ty}, found {}",
            other.kind()
        ))),
    }
}

/// Expects an array of exactly `n` items.
pub fn as_array_n<'a>(v: &'a Value, n: usize, ty: &str) -> Result<&'a [Value], DeError> {
    let items = as_array(v, ty)?;
    if items.len() != n {
        return Err(DeError::msg(format!(
            "expected {n} elements for {ty}, found {}",
            items.len()
        )));
    }
    Ok(items)
}

/// Splits an externally-tagged enum value into `(variant, body)`.
/// A bare string is a unit variant (body `Null`); a one-entry object is
/// a data-carrying variant.
pub fn as_enum<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, &'a Value), DeError> {
    static NULL: Value = Value::Null;
    match v {
        Value::Str(tag) => Ok((tag.as_str(), &NULL)),
        Value::Object(fields) if fields.len() == 1 => {
            Ok((fields[0].0.as_str(), &fields[0].1))
        }
        other => Err(DeError::msg(format!(
            "expected enum for {ty}, found {}",
            other.kind()
        ))),
    }
}

/// Looks up a struct field and deserializes it. A missing field is
/// treated as `Null` (so `Option` fields default to `None`); non-option
/// types then produce a descriptive error.
pub fn field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v)
            .map_err(|e| DeError::msg(format!("field `{name}` of {ty}: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| DeError::msg(format!("missing field `{name}` of {ty}"))),
    }
}

/// Looks up a struct field annotated `#[serde(default)]`: a missing (or
/// `Null`) field falls back to `T::default()` instead of erroring, which
/// is what keeps old serialized payloads parseable after a type grows a
/// field.
pub fn field_or_default<T: Deserialize + Default>(
    fields: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == name) {
        Some((_, Value::Null)) | None => Ok(T::default()),
        Some((_, v)) => T::from_value(v)
            .map_err(|e| DeError::msg(format!("field `{name}` of {ty}: {e}"))),
    }
}
