//! Serialization helpers used by generated code.

use crate::Value;

/// Wraps a data-carrying enum variant in its external tag:
/// `{"Variant": body}`.
pub fn variant(name: &str, body: Value) -> Value {
    Value::Object(vec![(name.to_string(), body)])
}
