//! Minimal proptest-compatible property harness for offline builds.
//!
//! Supports the subset this workspace uses: the `proptest!` macro
//! (with optional `#![proptest_config(...)]`), `prop_assert!`/
//! `prop_assert_eq!`, range and tuple strategies, `Just`, `any`,
//! `prop_oneof!`, `.prop_map`, and `prop::collection::vec`. Cases are
//! generated from a seed derived deterministically from the test's
//! module path and name, so failures reproduce run-to-run. There is no
//! shrinking: the harness reports the failing case's inputs directly.

pub mod collection;
pub mod rng;
pub mod strategy;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };

    /// Mirror of proptest's `prop::` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside `proptest!`, failing the case (not
/// panicking directly) so the harness can report the inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                left,
                right,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?} != {:?}`",
                left, right
            )));
        }
    }};
}

/// Weighted or unweighted union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( ($weight as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Defines property tests. Each `name(arg in strategy, ...)` becomes a
/// `fn name()` that samples the strategies `cases` times and runs the
/// body, reporting the generated inputs on failure.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let base = $crate::rng::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let mut rng = $crate::rng::TestRng::new(
                    base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng); )+
                let inputs = {
                    let mut s = ::std::string::String::new();
                    $(
                        s.push_str(&format!(
                            "  {} = {:?}\n",
                            stringify!($arg),
                            &$arg
                        ));
                    )+
                    s
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {case}/{}:\n{e}\ninputs:\n{inputs}",
                        stringify!($name),
                        cfg.cases,
                    );
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}
