//! Collection strategies (`prop::collection::vec`).

use crate::rng::TestRng;
use crate::strategy::Strategy;
use std::ops::{Range, RangeInclusive};

/// Length specification accepted by [`vec`].
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi_exclusive: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec length range");
        SizeRange { lo: r.start, hi_exclusive: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi_exclusive: *r.end() + 1 }
    }
}

/// Vectors whose length is drawn from `len` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, len: len.into() }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len.hi_exclusive - self.len.lo) as u64;
        let n = self.len.lo + rng.below(span.max(1)) as usize;
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}
