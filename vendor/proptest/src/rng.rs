//! Deterministic RNG for case generation (splitmix64).

/// Per-case random source.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5851_F42D_4C95_7F2D }
    }

    /// Next 64 random bits (splitmix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Modulo bias is irrelevant at test-generation quality.
        self.next_u64() % bound
    }
}

/// FNV-1a hash of a string, used to derive per-test base seeds.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}
