//! Strategies: composable random value generators.

use crate::rng::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies a function to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates only values passing the predicate (bounded retries).
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }

    /// Type-erases the strategy so heterogeneous strategies with one
    /// value type can share a collection (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<V> {
    fn sample_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        self.0.sample_dyn(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy by shared reference (lets one strategy be sampled from
/// several sites without moving it).
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: predicate never satisfied ({})", self.reason);
    }
}

/// Weighted union of same-valued strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Union from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample(&self, rng: &mut TestRng) -> V {
        let mut roll = rng.below(self.total);
        for (w, s) in &self.arms {
            if roll < *w as u64 {
                return s.sample(rng);
            }
            roll -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ------------------------------------------------------------ range support

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ------------------------------------------------------------------- tuples

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---------------------------------------------------------------- arbitrary

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// The canonical strategy.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-range strategy behind `any::<T>()` for primitives.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

any_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);
