//! Minimal serde_json-compatible codec over the vendored serde
//! [`Value`] data model: compact and pretty printers plus a strict
//! recursive-descent parser. Integers round-trip at full 64-bit
//! precision.

use serde::de::DeserializeOwned;
use serde::Serialize;

mod parse;
mod print;

pub use parse::parse_value;

/// Encode/decode error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub(crate) fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::compact(&value.to_value()))
}

/// Serializes `value` as human-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print::pretty(&value.to_value()))
}

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    let v = parse_value(s)?;
    T::from_value(&v).map_err(|e| Error::msg(e.to_string()))
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::msg(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

/// Re-export so callers can pattern-match parsed trees.
pub use serde::Value as JsonValue;

#[cfg(test)]
mod tests {
    use super::*;
    use serde::Value;

    #[test]
    fn round_trips_scalars() {
        for src in ["null", "true", "false", "0", "-7", "9223372036854775807", "-9223372036854775808", "18446744073709551615", "1.5", "\"hi\\n\""] {
            let v: Value = parse_value(src).unwrap();
            let back: Value = parse_value(&print::compact(&v)).unwrap();
            assert_eq!(v, back, "round-trip failed for {src}");
        }
    }

    #[test]
    fn round_trips_nested() {
        let src = r#"{"a":[1,2,{"b":null}],"c":"x","d":{"e":[true,false]}}"#;
        let v: Value = parse_value(src).unwrap();
        assert_eq!(print::compact(&v), src);
        let back: Value = parse_value(&print::pretty(&v)).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("tru").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"unterminated").is_err());
    }
}
