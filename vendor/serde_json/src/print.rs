//! JSON printers.

use serde::Value;

/// Compact printer (no whitespace).
pub fn compact(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, None, 0, &mut out);
    out
}

/// Pretty printer (two-space indent).
pub fn pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(v, Some(2), 0, &mut out);
    out
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            if !items.is_empty() {
                newline(indent, depth, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline(indent, depth + 1, out);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            if !fields.is_empty() {
                newline(indent, depth, out);
            }
            out.push('}');
        }
    }
}

fn newline(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        let s = f.to_string();
        out.push_str(&s);
        // Keep the float-ness visible so it re-parses as Float.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; match serde_json's lossy `null`.
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
