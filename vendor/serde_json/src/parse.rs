//! Strict recursive-descent JSON parser.

use crate::Error;
use serde::Value;

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse_value(src: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::msg(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: expect \uXXXX low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let code = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(code)
                                        .ok_or_else(|| self.err("invalid surrogate pair"))?
                                } else {
                                    return Err(self.err("lone surrogate"));
                                }
                            } else {
                                char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(self.err("control character in string"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}
