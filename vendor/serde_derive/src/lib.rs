//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! Hand-rolled on top of `proc_macro` (no syn/quote) for offline
//! builds. Supports the subset this workspace uses: non-generic named
//! structs, tuple structs (single-field = transparent newtype, matching
//! real serde's JSON behaviour), unit structs, and enums with unit,
//! tuple, and struct variants (externally tagged). Two field/variant
//! attributes are honoured: `#[serde(transparent)]` on newtypes (already
//! the default shape here) and `#[serde(default)]` on named fields,
//! which makes a missing field deserialize to `Default::default()` so
//! payloads written before the field existed still parse. All other
//! attributes are ignored.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ------------------------------------------------------------------ parsing

struct Item {
    name: String,
    /// Type parameter names (`Envelope<M>` → `["M"]`). Lifetimes,
    /// bounds, and const generics are not supported.
    generics: Vec<String>,
    kind: ItemKind,
}

impl Item {
    /// `impl<M: ::serde::Serialize> ... for Name<M>` header pieces.
    fn impl_header(&self, bound: &str) -> (String, String) {
        if self.generics.is_empty() {
            (String::new(), self.name.clone())
        } else {
            let params: Vec<String> =
                self.generics.iter().map(|g| format!("{g}: {bound}")).collect();
            (
                format!("<{}>", params.join(", ")),
                format!("{}<{}>", self.name, self.generics.join(", ")),
            )
        }
    }
}

enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

/// One named field: its identifier plus whether `#[serde(default)]` was
/// present (missing values then deserialize to `Default::default()`).
struct Field {
    name: String,
    default: bool,
}

struct Variant {
    name: String,
    data: VariantData,
}

enum VariantData {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn parse_item(ts: TokenStream) -> Item {
    let toks: Vec<TokenTree> = ts.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kw = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    let mut generics = Vec::new();
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        i += 1;
        let mut depth = 1i32;
        let mut at_param_start = true;
        while depth > 0 {
            match toks.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    at_param_start = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    panic!("serde_derive (vendored): lifetime parameters are not supported");
                }
                Some(TokenTree::Ident(id)) if at_param_start => {
                    generics.push(id.to_string());
                    at_param_start = false;
                }
                Some(_) => {}
                None => panic!("serde_derive: unterminated generic parameter list"),
            }
            i += 1;
        }
    }
    let kind = match kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(
                    split_top_level(g.stream()).iter().map(|c| parse_field(c)).collect(),
                )
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(split_top_level(g.stream()).len())
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            None => ItemKind::UnitStruct,
            other => panic!("serde_derive: unexpected struct body: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => ItemKind::Enum(
                split_top_level(g.stream()).iter().map(|c| parse_variant(c)).collect(),
            ),
            other => panic!("serde_derive: unexpected enum body: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, generics, kind }
}

/// Skips `#[...]` attributes and `pub` / `pub(...)` visibility starting
/// at `i`, returning the index of the next significant token.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            _ => return i,
        }
    }
}

/// Splits a field/variant list on commas at angle-bracket depth zero.
/// Parenthesized/bracketed/braced subtrees are single `Group` tokens, so
/// only `<...>` nesting needs explicit tracking.
fn split_top_level(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in ts {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                chunks.last_mut().unwrap().push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                chunks.last_mut().unwrap().push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                chunks.push(Vec::new());
            }
            _ => chunks.last_mut().unwrap().push(tt),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// First identifier of a field declaration (its name), after attributes
/// and visibility.
fn leading_ident(chunk: &[TokenTree]) -> String {
    let i = skip_attrs_and_vis(chunk, 0);
    match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected field name, found {other:?}"),
    }
}

/// Parses one named field: its identifier plus whether any leading
/// `#[serde(...)]` attribute lists `default`.
fn parse_field(chunk: &[TokenTree]) -> Field {
    Field { name: leading_ident(chunk), default: has_serde_default(chunk) }
}

/// `true` when the field's attributes include `#[serde(default)]` (alone
/// or among other comma-separated serde attributes). The `default =
/// "path"` form is not supported — only the bare flag.
fn has_serde_default(chunk: &[TokenTree]) -> bool {
    let mut i = 0;
    while let Some(TokenTree::Punct(p)) = chunk.get(i) {
        if p.as_char() != '#' {
            break;
        }
        if let Some(TokenTree::Group(attr)) = chunk.get(i + 1) {
            if attr.delimiter() == Delimiter::Bracket {
                let inner: Vec<TokenTree> = attr.stream().into_iter().collect();
                let is_serde = matches!(
                    inner.first(),
                    Some(TokenTree::Ident(id)) if id.to_string() == "serde"
                );
                if is_serde {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        if args.delimiter() == Delimiter::Parenthesis {
                            let args: Vec<TokenTree> = args.stream().into_iter().collect();
                            for (j, tt) in args.iter().enumerate() {
                                let named = matches!(
                                    tt,
                                    TokenTree::Ident(id) if id.to_string() == "default"
                                );
                                // Reject `default = ...`: silently reading
                                // it as the bare flag would diverge from
                                // real serde's semantics.
                                let assigned = matches!(
                                    args.get(j + 1),
                                    Some(TokenTree::Punct(p)) if p.as_char() == '='
                                );
                                if named && assigned {
                                    panic!(
                                        "serde_derive (vendored): `default = ...` is not \
                                         supported, use the bare `default` flag"
                                    );
                                }
                                if named {
                                    return true;
                                }
                            }
                        }
                    }
                }
            }
            i += 2;
        } else {
            break;
        }
    }
    false
}

fn parse_variant(chunk: &[TokenTree]) -> Variant {
    let i = skip_attrs_and_vis(chunk, 0);
    let name = match chunk.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected variant name, found {other:?}"),
    };
    let data = match chunk.get(i + 1) {
        None => VariantData::Unit,
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantData::Unit,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            VariantData::Tuple(split_top_level(g.stream()).len())
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => VariantData::Named(
            split_top_level(g.stream()).iter().map(|c| parse_field(c)).collect(),
        ),
        other => panic!("serde_derive: unexpected variant body: {other:?}"),
    };
    Variant { name, data }
}

// ------------------------------------------------------------------ codegen

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        ItemKind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", items.join(", "))
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.data {
                        VariantData::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),"
                        ),
                        VariantData::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::ser::variant(\"{vn}\", ::serde::Serialize::to_value(f0)),"
                        ),
                        VariantData::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::ser::variant(\"{vn}\", ::serde::Value::Array(vec![{}])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantData::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let f = &f.name;
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            format!(
                                "{name}::{vn} {{ {} }} => ::serde::ser::variant(\"{vn}\", ::serde::Value::Object(vec![{}])),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    let (params, ty) = item.impl_header("::serde::Serialize");
    format!(
        "impl{params} ::serde::Serialize for {ty} {{\n\
            fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
        }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => format!("let _ = v; ::std::result::Result::Ok({name})"),
        ItemKind::TupleStruct(1) => format!(
            "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
        ),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = ::serde::de::as_array_n(v, {n}, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        ItemKind::NamedStruct(fields) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    let helper = if f.default { "field_or_default" } else { "field" };
                    let f = &f.name;
                    format!("{f}: ::serde::de::{helper}(fields, \"{f}\", \"{name}\")?,")
                })
                .collect();
            format!(
                "let fields = ::serde::de::as_object(v, \"{name}\")?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                items.join("\n")
            )
        }
        ItemKind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|var| {
                    let vn = &var.name;
                    match &var.data {
                        VariantData::Unit => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ),
                        VariantData::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(body)?)),"
                        ),
                        VariantData::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let items = ::serde::de::as_array_n(body, {n}, \"{name}::{vn}\")?;\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}",
                                items.join(", ")
                            )
                        }
                        VariantData::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let helper =
                                        if f.default { "field_or_default" } else { "field" };
                                    let f = &f.name;
                                    format!(
                                        "{f}: ::serde::de::{helper}(fields, \"{f}\", \"{name}::{vn}\")?,"
                                    )
                                })
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let fields = ::serde::de::as_object(body, \"{name}::{vn}\")?;\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }})\n\
                                 }}",
                                items.join("\n")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "let (tag, body) = ::serde::de::as_enum(v, \"{name}\")?;\n\
                 let _ = body;\n\
                 match tag {{\n\
                     {}\n\
                     other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                 }}",
                arms.join("\n")
            )
        }
    };
    let (params, ty) = item.impl_header("::serde::Deserialize");
    format!(
        "impl{params} ::serde::Deserialize for {ty} {{\n\
            fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                {body}\n\
            }}\n\
        }}"
    )
}
