//! Minimal criterion-compatible bench harness for offline builds.
//! Runs each benchmark for a fixed sample count, reports mean
//! wall-clock time per iteration, and (when a throughput is set)
//! derived elements-per-second. No statistics, plots, or baselines.

use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.into();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function(name, f);
        group.finish();
        self
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 0 };
        // Warm-up pass (untimed from the harness's perspective).
        f(&mut b);
        b.elapsed = Duration::ZERO;
        b.iters = 0;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let per_iter = if b.iters > 0 {
            b.elapsed / b.iters as u32
        } else {
            Duration::ZERO
        };
        let mut line = format!(
            "{}/{}: {:>12.3?} per iter ({} iters)",
            self.name, id, per_iter, b.iters
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let secs = per_iter.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!(" — {:.0} {unit}/s", count as f64 / secs));
            }
        }
        println!("{line}");
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Per-benchmark timing handle.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated runs of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        std::hint::black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Re-export matching criterion's helper.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
