//! Minimal parking_lot-compatible facade over `std::sync` for offline
//! builds. Locks do not poison: a panicked holder's data stays
//! accessible, matching parking_lot semantics.

use std::sync::TryLockError;

/// Mutex without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard type re-exported under parking_lot's name.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocking lock; never fails (poison is ignored).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-blocking lock attempt.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// RwLock without poisoning.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Read guard re-exported under parking_lot's name.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Write guard re-exported under parking_lot's name.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Shared read lock; never fails.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive write lock; never fails.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}
