//! Minimal crossbeam facade for offline builds. Only the channel API
//! this workspace uses, mapped onto `std::sync::mpsc` (whose unbounded
//! channel and error types line up one-to-one).

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, SyncSender, TryRecvError,
        TrySendError,
    };

    /// Unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }

    /// Bounded MPSC channel. Unlike real crossbeam, the sending half is
    /// the distinct `SyncSender` type (std's split API); `try_send` and
    /// `TrySendError` behave identically.
    pub fn bounded<T>(cap: usize) -> (SyncSender<T>, Receiver<T>) {
        std::sync::mpsc::sync_channel(cap)
    }
}
