//! Minimal crossbeam facade for offline builds. Only the channel API
//! this workspace uses, mapped onto `std::sync::mpsc` (whose unbounded
//! channel and error types line up one-to-one).

pub mod channel {
    pub use std::sync::mpsc::{
        Receiver, RecvError, RecvTimeoutError, SendError, Sender, TryRecvError,
    };

    /// Unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}
