//! Minimal bytes facade for offline builds: a growable byte buffer
//! with the `Buf`/`BufMut` methods this workspace's frame codec uses.
//! Backed by a plain `Vec<u8>`; correctness over throughput.

use std::ops::{Deref, DerefMut};

/// Growable byte buffer.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved space.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// Ensures space for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    /// Splits off and returns the first `at` bytes, leaving the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.buf.len(), "split_to out of bounds");
        let rest = self.buf.split_off(at);
        BytesMut { buf: std::mem::replace(&mut self.buf, rest) }
    }

    /// Appends bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({:?})", &self.buf)
    }
}

/// Read-side cursor operations.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Discards the first `cnt` bytes.
    fn advance(&mut self, cnt: usize);
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.buf.len(), "advance out of bounds");
        self.buf.drain(..cnt);
    }
}

/// Write-side append operations.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_shaped_round_trip() {
        let mut b = BytesMut::new();
        b.put_u32(3);
        b.put_slice(b"abcdef");
        assert_eq!(b.len(), 10);
        assert_eq!(u32::from_be_bytes([b[0], b[1], b[2], b[3]]), 3);
        b.advance(4);
        let head = b.split_to(3);
        assert_eq!(&head[..], b"abc");
        assert_eq!(&b[..], b"def");
        assert!(!b.is_empty());
    }
}
