//! Client-side load generator: drives a live TCP cluster through the
//! wire-protocol gateway and verifies the run with the conformance
//! oracle.
//!
//! Unlike the harness tests (which inject inputs straight into site
//! mailboxes), the load generator exercises the full client path:
//! `avdb-client` connections speak the binary wire protocol to the
//! gateway listeners, pipeline updates up to a per-connection window,
//! and measure the latency each *client* observes — connect, frame
//! encode, gateway dispatch, accelerator commit, outcome routing, frame
//! decode. Results land in `BENCH_<label>.json` / `.txt` next to the
//! `avdb-bench` reports, and the whole run must pass the oracle before
//! the report is considered valid.

use crate::bench::Percentiles;
use crate::core::{Accelerator, Input};
use crate::oracle::Observation;
use crate::prelude::*;
use crate::simnet::TcpMesh;
use crate::telemetry::Registry;
use crate::workload::{scm_catalog, ArrivalPattern, Popularity, UpdateStream, WorkloadSpec};
use avdb_client::{ClientError, Connection};
use avdb_gateway::{Gateway, GatewayConfig, GatewayMetrics, GatewayStats};
use avdb_wire::{Request, Response};
use serde::Serialize;
use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Parameters of one load-generation run.
#[derive(Clone, Debug)]
pub struct LoadgenSpec {
    /// Cluster size (site 0 = maker).
    pub sites: usize,
    /// Total updates pushed through the gateway.
    pub updates: usize,
    /// Concurrent client connections, spread round-robin across sites.
    pub connections: usize,
    /// Per-connection pipeline depth (kept at the gateway's window, so a
    /// well-behaved run never draws `OverWindow` errors).
    pub window: usize,
    /// Workload + cluster RNG seed.
    pub seed: u64,
    /// Regular (AV-managed, Delay-path) products.
    pub regular_products: usize,
    /// Non-regular (Immediate/2PC-path) products.
    pub non_regular_products: usize,
    /// Initial per-product stock.
    pub initial_stock: i64,
    /// Reads interleaved per mille of updates (served via introspection).
    pub read_permille: u32,
    /// Report label: results land in `BENCH_<label>.json` / `.txt`.
    pub label: String,
    /// Output directory for the BENCH files.
    pub out_dir: PathBuf,
    /// When set, accelerators keep flight recorders and a dump is
    /// written here at shutdown (CI uploads it on failure).
    pub flight_dir: Option<PathBuf>,
}

impl Default for LoadgenSpec {
    fn default() -> Self {
        LoadgenSpec {
            sites: 7,
            updates: 100_000,
            connections: 256,
            window: 32,
            seed: 1,
            regular_products: 15,
            non_regular_products: 1,
            initial_stock: 1_200_000,
            read_permille: 10,
            label: "loadgen".into(),
            out_dir: PathBuf::from("results"),
            flight_dir: None,
        }
    }
}

/// What one run produced; serialized as `BENCH_<label>.json`.
#[derive(Clone, Debug, Serialize)]
pub struct LoadgenReport {
    /// Report label.
    pub label: String,
    /// Cluster size.
    pub sites: usize,
    /// Updates requested.
    pub updates: usize,
    /// Client connections.
    pub connections: usize,
    /// Per-connection pipeline window.
    pub window: usize,
    /// Workload seed.
    pub seed: u64,
    /// Client-observed committed updates.
    pub committed: u64,
    /// Client-observed aborted updates (typed abort responses).
    pub aborted: u64,
    /// Read responses received.
    pub reads: u64,
    /// Typed wire-level error responses (over-window, shed, …).
    pub wire_errors: u64,
    /// Requests that got no usable reply (timeout / connection died).
    pub failures: u64,
    /// Client-observed request latency in microseconds.
    pub latency_us: Percentiles,
    /// Wall-clock time of the drive phase in milliseconds.
    pub wall_ms: u64,
    /// Updates resolved per second of drive time.
    pub updates_per_sec: u64,
    /// Gateway-side counters.
    pub gateway: GatewayStats,
    /// Whether the conformance oracle passed.
    pub oracle_ok: bool,
}

/// Per-worker tally, merged after the drive phase.
#[derive(Default)]
struct WorkerTally {
    committed: u64,
    aborted: u64,
    reads: u64,
    wire_errors: u64,
    failures: u64,
    latency_us: Vec<u64>,
}

/// Runs one load-generation session end to end: boots the cluster and
/// gateway, drives the workload, settles, shuts down, oracle-checks, and
/// writes the BENCH report. Returns the report, or the oracle's
/// violation list (the report files are written either way).
pub fn run(spec: &LoadgenSpec) -> std::result::Result<LoadgenReport, String> {
    assert!(spec.sites >= 1 && spec.window >= 1);
    assert!(
        spec.connections >= spec.sites,
        "need at least one connection per site ({} < {})",
        spec.connections,
        spec.sites
    );
    let cfg = SystemConfig::builder()
        .sites(spec.sites)
        .regular_products(spec.regular_products, Volume(spec.initial_stock))
        .non_regular_products(spec.non_regular_products, Volume(spec.initial_stock))
        .propagation_batch(5)
        .seed(spec.seed)
        .build()
        .map_err(|e| format!("config: {e}"))?;
    let actors: Vec<Accelerator> = SiteId::all(spec.sites)
        .map(|s| {
            let mut acc = Accelerator::new(s, &cfg);
            if let Some(dir) = &spec.flight_dir {
                acc.enable_flight_dump(dir.clone());
            }
            acc
        })
        .collect();
    let (mesh, _http) = TcpMesh::spawn_with_http(actors, spec.seed);
    let mesh = Arc::new(mesh);
    let gateway = Gateway::spawn(
        Arc::clone(&mesh),
        spec.sites,
        GatewayConfig {
            max_connections: spec.connections,
            max_in_flight: spec.window,
            shed_after: spec.window,
            queue_slack: spec.window,
        },
    );

    // The workload's deterministic request stream, grouped by site; each
    // connection serves one site and drains its slice of that site's
    // requests. (The gateway stamps the connection's site into every
    // update, so site affinity is part of the protocol.)
    let catalog =
        scm_catalog(spec.regular_products, spec.non_regular_products, Volume(spec.initial_stock));
    let stream = UpdateStream::new(
        WorkloadSpec {
            n_sites: spec.sites,
            n_updates: spec.updates,
            maker_increase_pct: 20,
            retailer_decrease_pct: 10,
            popularity: Popularity::Uniform,
            spacing: 0,
            arrival: ArrivalPattern::Even,
            seed: spec.seed,
        },
        &catalog,
    )
    .collect_all();
    let mut per_conn: Vec<Vec<(u32, i64)>> = vec![Vec::new(); spec.connections];
    // Connection `i` serves site `i % sites`; round-robin each site's
    // requests over exactly the connections bound to that site.
    let lanes_by_site: Vec<Vec<usize>> = (0..spec.sites)
        .map(|s| (0..spec.connections).filter(|i| i % spec.sites == s).collect())
        .collect();
    let mut site_rr = vec![0usize; spec.sites];
    for (_, req) in &stream {
        let site = req.site.index();
        let lanes = &lanes_by_site[site];
        let lane = lanes[site_rr[site]];
        site_rr[site] = (site_rr[site] + 1) % lanes.len();
        per_conn[lane].push((req.product.0, req.delta.get()));
    }

    let addrs: Vec<std::net::SocketAddr> = gateway.addrs().to_vec();
    let drive_start = Instant::now();
    let workers: Vec<std::thread::JoinHandle<WorkerTally>> = per_conn
        .into_iter()
        .enumerate()
        .map(|(i, reqs)| {
            let addr = addrs[i % spec.sites];
            let window = spec.window;
            let read_permille = spec.read_permille;
            std::thread::spawn(move || drive_connection(addr, &reqs, window, read_permille))
        })
        .collect();
    let mut tally = WorkerTally::default();
    for w in workers {
        let t = w.join().expect("loadgen worker");
        tally.committed += t.committed;
        tally.aborted += t.aborted;
        tally.reads += t.reads;
        tally.wire_errors += t.wire_errors;
        tally.failures += t.failures;
        tally.latency_us.extend(t.latency_us);
    }
    let wall_ms = drive_start.elapsed().as_millis() as u64;

    // Every accepted update's outcome must drain before settling.
    let deadline = Instant::now() + Duration::from_secs(60);
    while gateway.outcome_count() < gateway.stats().updates && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    for _ in 0..3 {
        for site in SiteId::all(spec.sites) {
            mesh.inject(site, Input::FlushPropagation);
        }
        std::thread::sleep(Duration::from_millis(50));
    }

    let (submissions, mut outcomes, gw_stats) = gateway.finish();
    let mesh = Arc::try_unwrap(mesh).map_err(|_| "mesh still referenced at shutdown")?;
    let (actors, counters, leftovers) = mesh.shutdown();
    outcomes.extend(leftovers);

    // Client-observed latency lands in the telemetry registry alongside
    // the protocol counters, like every other instrumented subsystem.
    let mut registry = Registry::new();
    let lat_id = registry.histogram_id("loadgen.client.latency.us");
    for us in &tally.latency_us {
        registry.observe_id(lat_id, *us);
    }
    let mut gw_metrics = GatewayMetrics::new();
    gw_metrics.sync(&gw_stats);
    tally.latency_us.sort_unstable();
    let latency = Percentiles::from_sorted(&tally.latency_us);

    let report_ora = crate::oracle::check(&Observation::from_accelerators(
        cfg,
        &actors,
        submissions,
        outcomes,
        counters.snapshot(),
    ));

    let resolved = tally.committed + tally.aborted;
    let report = LoadgenReport {
        label: spec.label.clone(),
        sites: spec.sites,
        updates: spec.updates,
        connections: spec.connections,
        window: spec.window,
        seed: spec.seed,
        committed: tally.committed,
        aborted: tally.aborted,
        reads: tally.reads,
        wire_errors: tally.wire_errors,
        failures: tally.failures,
        latency_us: latency,
        wall_ms,
        updates_per_sec: (resolved * 1000).checked_div(wall_ms).unwrap_or(0),
        gateway: gw_stats,
        oracle_ok: report_ora.is_ok(),
    };
    write_report(spec, &report)?;
    if let Some(dir) = &spec.flight_dir {
        let mut dump = crate::telemetry::FlightDump::new("loadgen-shutdown", spec.seed);
        for acc in &actors {
            dump.push_site(acc.site().0, acc.flight());
        }
        std::fs::create_dir_all(dir).map_err(|e| format!("flight dir: {e}"))?;
        std::fs::write(dir.join("loadgen-shutdown.json"), dump.to_json())
            .map_err(|e| format!("flight dump: {e}"))?;
        std::fs::write(dir.join("loadgen-gateway.prom"), gw_metrics.metrics_text())
            .map_err(|e| format!("gateway metrics: {e}"))?;
    }
    if !report_ora.is_ok() {
        return Err(format!("oracle violations in loadgen run:\n{report_ora}"));
    }
    Ok(report)
}

/// One closed-loop worker: pipelines updates up to `window` deep on a
/// single connection and waits for replies FIFO, timing each request
/// from submit to reply.
fn drive_connection(
    addr: std::net::SocketAddr,
    reqs: &[(u32, i64)],
    window: usize,
    read_permille: u32,
) -> WorkerTally {
    let mut tally = WorkerTally::default();
    let conn = match Connection::connect(addr) {
        Ok(c) => c,
        Err(_) => {
            tally.failures += reqs.len() as u64;
            return tally;
        }
    };
    let timeout = Duration::from_secs(30);
    let mut pending: VecDeque<(avdb_client::PendingReply, Instant)> = VecDeque::new();
    for (i, (product, delta)) in reqs.iter().enumerate() {
        // A sprinkle of reads exercises the introspection path under
        // update load without counting toward the oracle's ledger.
        if read_permille > 0 && (i as u64 * read_permille as u64) % 1000 < read_permille as u64 {
            match conn.call(&Request::Read { product: *product }, timeout) {
                Ok(Response::ReadOk { .. }) => tally.reads += 1,
                Ok(_) => tally.wire_errors += 1,
                Err(_) => tally.failures += 1,
            }
        }
        match conn.submit(&Request::Update { product: *product, delta: *delta }) {
            Ok(reply) => pending.push_back((reply, Instant::now())),
            Err(_) => {
                tally.failures += 1;
                continue;
            }
        }
        if pending.len() >= window {
            let (reply, started) = pending.pop_front().expect("non-empty pipeline");
            settle_reply(&mut tally, reply.wait(timeout), started);
        }
    }
    while let Some((reply, started)) = pending.pop_front() {
        settle_reply(&mut tally, reply.wait(timeout), started);
    }
    tally
}

/// Folds one reply into the tally.
fn settle_reply(
    tally: &mut WorkerTally,
    result: std::result::Result<Response, ClientError>,
    started: Instant,
) {
    match result {
        Ok(Response::Committed { .. }) => {
            tally.committed += 1;
            tally.latency_us.push(started.elapsed().as_micros() as u64);
        }
        Ok(Response::Aborted { .. }) => {
            tally.aborted += 1;
            tally.latency_us.push(started.elapsed().as_micros() as u64);
        }
        Ok(_) => tally.wire_errors += 1,
        Err(_) => tally.failures += 1,
    }
}

/// Writes `BENCH_<label>.json` (machine-readable) and `.txt` (human).
fn write_report(spec: &LoadgenSpec, report: &LoadgenReport) -> std::result::Result<(), String> {
    std::fs::create_dir_all(&spec.out_dir).map_err(|e| format!("out dir: {e}"))?;
    let json = serde_json::to_string_pretty(report).expect("report serializes");
    std::fs::write(spec.out_dir.join(format!("BENCH_{}.json", spec.label)), json)
        .map_err(|e| format!("BENCH json: {e}"))?;
    let txt = format!(
        "loadgen {label}: {sites} sites, {connections} conns (window {window}), seed {seed}\n\
         updates     : {updates} requested, {committed} committed, {aborted} aborted\n\
         reads       : {reads}\n\
         errors      : {wire_errors} wire, {failures} failed\n\
         latency  us : p50 {p50}  p95 {p95}  p99 {p99}  max {max}\n\
         drive       : {wall_ms} ms  ({ups}/s)\n\
         gateway     : {acc} accepted, {refused} refused, {shed} shed, {ow} over-window\n\
         oracle      : {oracle}\n",
        label = report.label,
        sites = report.sites,
        connections = report.connections,
        window = report.window,
        seed = report.seed,
        updates = report.updates,
        committed = report.committed,
        aborted = report.aborted,
        reads = report.reads,
        wire_errors = report.wire_errors,
        failures = report.failures,
        p50 = report.latency_us.p50,
        p95 = report.latency_us.p95,
        p99 = report.latency_us.p99,
        max = report.latency_us.max,
        wall_ms = report.wall_ms,
        ups = report.updates_per_sec,
        acc = report.gateway.accepted,
        refused = report.gateway.refused,
        shed = report.gateway.shed,
        ow = report.gateway.over_window,
        oracle = if report.oracle_ok { "ok" } else { "VIOLATIONS" },
    );
    std::fs::write(spec.out_dir.join(format!("BENCH_{}.txt", spec.label)), txt)
        .map_err(|e| format!("BENCH txt: {e}"))?;
    Ok(())
}
