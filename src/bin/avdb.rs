//! `avdb` — command-line front end for the reproduction.
//!
//! ```sh
//! avdb fig6      [--updates N] [--seed S]     # E1: Fig. 6
//! avdb table1    [--updates N] [--seed S]     # E2: Table 1
//! avdb ablations [--updates N] [--seed S]     # A1–A4, A6–A10 sweeps
//! avdb faults    [--updates N] [--seed S]     # A5: crash experiments
//! avdb report    [--dir D] [--updates N] [--ablation N] [--seed S]
//! avdb demo                                    # 3-site walkthrough
//! avdb serve [--sites N] [--seed S] [--updates N] [--hold-ms MS]
//!            [--series-window N] [--addr-file PATH]
//!            [--flight-dir DIR]                      # TCP cluster + /metrics
//!                                  # + wire-protocol gateway (PATH.wire)
//! avdb top --targets HOST:PORT,... [--interval-ms N] [--once] [--check]
//! ```

use avdb::prelude::*;
use avdb::sim::experiments::{
    ablations, circulation, freshness, mix, run_allocation_sweep, run_circulation,
    run_decide_sweep, run_fault_experiment, run_fig6, run_freshness, run_magnitude_sweep,
    run_mix, run_scaling, run_scaling_balanced, run_select_sweep, run_skew_sweep, run_table1,
    scaling,
};
use avdb::sim::{generate_report, ReportScale};
use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command-line options.
struct Opts {
    updates: usize,
    ablation_updates: usize,
    seed: u64,
    dir: PathBuf,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            updates: 10_000,
            ablation_updates: 3_000,
            seed: 1,
            dir: PathBuf::from("results/json"),
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String> {
            it.next().ok_or_else(|| {
                AvdbError::InvalidConfig(format!("{name} requires a value"))
            })
        };
        match flag.as_str() {
            "--updates" => {
                opts.updates = value("--updates")?
                    .parse()
                    .map_err(|e| AvdbError::InvalidConfig(format!("--updates: {e}")))?;
            }
            "--ablation" => {
                opts.ablation_updates = value("--ablation")?
                    .parse()
                    .map_err(|e| AvdbError::InvalidConfig(format!("--ablation: {e}")))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| AvdbError::InvalidConfig(format!("--seed: {e}")))?;
            }
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            other => {
                return Err(AvdbError::InvalidConfig(format!("unknown flag {other}")));
            }
        }
    }
    Ok(opts)
}

fn cmd_fig6(opts: &Opts) {
    let result = run_fig6(opts.updates, opts.seed);
    println!("{}", result.render());
}

fn cmd_table1(opts: &Opts) {
    let step = (opts.updates / 5).max(1) as u64;
    let checkpoints: Vec<u64> = (1..=5).map(|i| i * step).collect();
    let result = run_table1(&checkpoints, opts.seed);
    println!("{}", result.render());
    println!(
        "retailer unfairness: {:.1}% (paper: \"almost same\")",
        result.retailer_unfairness() * 100.0
    );
}

fn cmd_ablations(opts: &Opts) {
    let (n, seed) = (opts.ablation_updates, opts.seed);
    println!("=== A1 deciding ===\n{}", ablations::render_rows(&run_decide_sweep(n, seed)));
    println!("=== A2 selecting ===\n{}", ablations::render_rows(&run_select_sweep(n, seed)));
    println!(
        "=== A3 scaling (paper rates) ===\n{}",
        scaling::render_rows(&run_scaling(&[3, 5, 9, 17], n, seed))
    );
    println!(
        "=== A3b scaling (balanced) ===\n{}",
        scaling::render_rows(&run_scaling_balanced(&[3, 5, 9, 17], n, seed))
    );
    println!(
        "=== A4 mix ===\n{}",
        mix::render_rows(&run_mix(&[0.0, 0.1, 0.25, 0.5, 1.0], n, seed))
    );
    println!("=== A6 allocation ===\n{}", ablations::render_rows(&run_allocation_sweep(n, seed)));
    println!("=== A7 skew ===\n{}", ablations::render_rows(&run_skew_sweep(n, seed)));
    println!("=== A8 magnitude ===\n{}", ablations::render_rows(&run_magnitude_sweep(n, seed)));
    println!(
        "=== A9 circulation ===\n{}",
        circulation::render_rows(&run_circulation(n, seed))
    );
    println!(
        "=== A10 freshness ===\n{}",
        freshness::render_rows(&run_freshness(&[1, 5, 25, 100], n, seed))
    );
}

fn cmd_faults(opts: &Opts) {
    for (label, site) in [("retailer (site2)", SiteId(2)), ("maker (site0)", SiteId(0))] {
        let r = run_fault_experiment(site, opts.ablation_updates, opts.seed);
        println!("=== crash of {label} ===");
        println!(
            "  proposal: {} commits total, {} during outage, converged={}",
            r.proposal_committed, r.proposal_committed_during_outage, r.converged_after_recovery
        );
        println!(
            "  conventional: {} commits total, {} during outage, worst latency {} ticks\n",
            r.conventional_committed,
            r.conventional_committed_during_outage,
            r.conventional_max_latency
        );
    }
}

fn cmd_report(opts: &Opts) -> Result<()> {
    let scale = ReportScale {
        paper_updates: opts.updates,
        ablation_updates: opts.ablation_updates,
        seed: opts.seed,
    };
    let written = generate_report(&opts.dir, scale)?;
    println!("wrote {} artifacts to {}", written.len(), opts.dir.display());
    Ok(())
}

fn cmd_demo() -> Result<()> {
    let config = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(90))
        .non_regular_products(1, Volume(30))
        .seed(42)
        .build()?;
    let mut system = DistributedSystem::new(config);
    system.enable_trace();
    system.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-20)));
    system.submit_at(VirtualTime(10), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-25)));
    system.submit_at(VirtualTime(20), UpdateRequest::new(SiteId(2), ProductId(1), Volume(-5)));
    system.run_until_quiescent();
    for (at, site, outcome) in system.drain_outcomes() {
        println!("t={at:<3} {site}: {outcome:?}");
    }
    println!("\nmessage sequence:\n{}", avdb::simnet::render_sequence(system.trace()));
    Ok(())
}

// ---- serve: a live TCP cluster with /metrics + /status endpoints ----------

struct ServeOpts {
    sites: usize,
    seed: u64,
    updates: usize,
    hold_ms: u64,
    series_window: u64,
    addr_file: Option<PathBuf>,
    flight_dir: Option<PathBuf>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            sites: 3,
            seed: 1,
            updates: 150,
            hold_ms: 10_000,
            series_window: 16,
            addr_file: None,
            flight_dir: None,
        }
    }
}

fn parse_serve_opts(args: &[String]) -> Result<ServeOpts> {
    let mut opts = ServeOpts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String> {
            it.next()
                .ok_or_else(|| AvdbError::InvalidConfig(format!("{name} requires a value")))
        };
        let parse_err = |name: &str, e: &dyn std::fmt::Display| {
            AvdbError::InvalidConfig(format!("{name}: {e}"))
        };
        match flag.as_str() {
            "--sites" => {
                opts.sites = value("--sites")?.parse().map_err(|e| parse_err("--sites", &e))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| parse_err("--seed", &e))?;
            }
            "--updates" => {
                opts.updates =
                    value("--updates")?.parse().map_err(|e| parse_err("--updates", &e))?;
            }
            "--hold-ms" => {
                opts.hold_ms =
                    value("--hold-ms")?.parse().map_err(|e| parse_err("--hold-ms", &e))?;
            }
            "--series-window" => {
                opts.series_window = value("--series-window")?
                    .parse()
                    .map_err(|e| parse_err("--series-window", &e))?;
            }
            "--addr-file" => opts.addr_file = Some(PathBuf::from(value("--addr-file")?)),
            "--flight-dir" => opts.flight_dir = Some(PathBuf::from(value("--flight-dir")?)),
            other => return Err(AvdbError::InvalidConfig(format!("unknown flag {other}"))),
        }
    }
    Ok(opts)
}

/// Boots a TCP cluster with per-site HTTP introspection and a
/// wire-protocol gateway, pumps a small deterministic workload through
/// it, then holds the endpoints open for `--hold-ms` so `avdb top` /
/// `curl` / wire clients / CI can scrape and drive them.
fn cmd_serve(opts: &ServeOpts) -> Result<()> {
    use avdb::core::Input;
    use avdb::gateway::{Gateway, GatewayConfig};
    use avdb::simnet::TcpMesh;
    use std::sync::Arc;

    let cfg = SystemConfig::builder()
        .sites(opts.sites)
        .regular_products(3, Volume(6_000))
        .non_regular_products(1, Volume(600))
        .propagation_batch(5)
        .series_window_ticks(opts.series_window)
        .seed(opts.seed)
        .build()?;
    let actors: Vec<Accelerator> = SiteId::all(opts.sites)
        .map(|s| {
            let mut acc = Accelerator::new(s, &cfg);
            if let Some(dir) = &opts.flight_dir {
                acc.enable_flight_dump(dir.clone());
            }
            acc
        })
        .collect();
    let (mesh, addrs): (TcpMesh<Accelerator>, _) = TcpMesh::spawn_with_http(actors, opts.seed);
    let mesh = Arc::new(mesh);
    let gateway = Gateway::spawn(Arc::clone(&mesh), opts.sites, GatewayConfig::default());

    let lines: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let wire_lines: Vec<String> = gateway.addrs().iter().map(|a| a.to_string()).collect();
    for (i, line) in lines.iter().enumerate() {
        println!("site {i}: http://{line}  (/metrics, /status)  wire://{}", wire_lines[i]);
    }
    // A deterministic mixed workload: the base mints, retailers sell, and
    // one product runs the Immediate (2PC) path.
    for i in 0..opts.updates as u64 {
        let site = SiteId((i % opts.sites as u64) as u32);
        let (product, delta) = if i % 10 == 9 {
            (ProductId(3), Volume(-1))
        } else if site == SiteId::BASE {
            (ProductId((i % 3) as u32), Volume(10))
        } else {
            (ProductId((i % 3) as u32), Volume(-7))
        };
        mesh.inject(site, Input::Update(UpdateRequest::new(site, product, delta)));
    }
    // The gateway's pump owns `drain_outputs`; counting through its
    // outcome log avoids two drains racing for the same outcomes.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while (gateway.outcome_count() as usize) < opts.updates
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    let seen = gateway.outcome_count();
    // Anti-entropy so the replication queues drain before scraping.
    for _ in 0..3 {
        for site in SiteId::all(opts.sites) {
            mesh.inject(site, Input::FlushPropagation);
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    // The addr file is written only once the workload has settled, so a
    // harness waiting on it scrapes a fully populated registry.
    if let Some(path) = &opts.addr_file {
        if let Some(parent) = path.parent() {
            let _ = std::fs::create_dir_all(parent);
        }
        std::fs::write(path, lines.join("\n") + "\n")
            .map_err(|e| AvdbError::InvalidConfig(format!("--addr-file: {e}")))?;
        // Wire-protocol addresses go in a sibling file: the main addr
        // file stays HTTP-only so `avdb top` can consume it verbatim.
        std::fs::write(path.with_extension("wire"), wire_lines.join("\n") + "\n")
            .map_err(|e| AvdbError::InvalidConfig(format!("--addr-file: {e}")))?;
    }
    println!("workload done: {seen}/{} outcomes; holding {} ms", opts.updates, opts.hold_ms);
    std::thread::sleep(std::time::Duration::from_millis(opts.hold_ms));

    let (_, _, gw_stats) = gateway.finish();
    println!(
        "gateway: {} accepted, {} refused, {} shed, {} wire updates",
        gw_stats.accepted, gw_stats.refused, gw_stats.shed, gw_stats.updates
    );
    let mut arc = mesh;
    let mesh = loop {
        match Arc::try_unwrap(arc) {
            Ok(mesh) => break mesh,
            Err(still_shared) => {
                std::thread::sleep(std::time::Duration::from_millis(2));
                arc = still_shared;
            }
        }
    };
    let (actors, counters, _) = mesh.shutdown();
    if let Some(dir) = &opts.flight_dir {
        let mut dump = avdb::telemetry::FlightDump::new("serve-shutdown", 0);
        for acc in &actors {
            dump.push_site(acc.site().0, acc.flight());
        }
        std::fs::create_dir_all(dir)
            .map_err(|e| AvdbError::InvalidConfig(format!("--flight-dir: {e}")))?;
        let path = dir.join("serve-shutdown.json");
        std::fs::write(&path, dump.to_json())
            .map_err(|e| AvdbError::InvalidConfig(format!("--flight-dir: {e}")))?;
        println!("flight recorder dump: {}", path.display());
    }
    println!("shut down: {} messages on the wire", counters.total_messages());
    Ok(())
}

// ---- top: poll /status + /metrics across a cluster ------------------------

struct TopOpts {
    targets: Vec<String>,
    interval_ms: u64,
    once: bool,
    check: bool,
}

fn parse_top_opts(args: &[String]) -> Result<TopOpts> {
    let mut opts = TopOpts { targets: Vec::new(), interval_ms: 1_000, once: false, check: false };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String> {
            it.next()
                .ok_or_else(|| AvdbError::InvalidConfig(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--targets" => {
                opts.targets = value("--targets")?
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .filter(|s| !s.is_empty())
                    .collect();
            }
            "--interval-ms" => {
                opts.interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| AvdbError::InvalidConfig(format!("--interval-ms: {e}")))?;
            }
            "--once" => opts.once = true,
            "--check" => opts.check = true,
            other => return Err(AvdbError::InvalidConfig(format!("unknown flag {other}"))),
        }
    }
    if opts.targets.is_empty() {
        return Err(AvdbError::InvalidConfig("top requires --targets HOST:PORT,...".into()));
    }
    Ok(opts)
}

/// One plain HTTP/1.1 GET over a fresh TCP connection. Returns
/// `(status_code, body)`.
fn http_get(target: &str, path: &str) -> std::io::Result<(u16, String)> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(target)?;
    stream.set_read_timeout(Some(std::time::Duration::from_secs(5)))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {target}\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let code: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "bad status line"))?;
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((code, body))
}

/// Metric families every healthy site must expose (the smoke contract CI
/// checks against).
const REQUIRED_FAMILIES: &[&str] =
    &["avdb_update_committed_total", "avdb_repl_queue_depth", "avdb_update_latency_ticks"];

fn render_cluster_table(rows: &[(String, Option<avdb::core::StatusSnapshot>)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<22} {:>4} {:<8} {:>8} {:>7} {:>6} {:>6} {:>6} {:>6} {:>7} {:<5}",
        "target", "site", "role", "clock", "commit", "abort", "delay", "imm", "queue", "flight",
        "slo"
    );
    for (target, status) in rows {
        match status {
            Some(s) => {
                let _ = writeln!(
                    out,
                    "{:<22} {:>4} {:<8} {:>8} {:>7} {:>6} {:>6} {:>6} {:>6} {:>7} {:<5}",
                    target,
                    s.site,
                    s.role,
                    s.clock,
                    s.committed,
                    s.aborted,
                    s.in_flight_delay,
                    s.in_flight_imm,
                    s.repl_queue_depth,
                    s.flight_recorded,
                    s.slo.overall.label()
                );
            }
            None => {
                let _ = writeln!(out, "{target:<22} (unreachable)");
            }
        }
    }
    // Per-product divergence, when any site reports a nonzero gauge.
    let diverged: Vec<String> = rows
        .iter()
        .filter_map(|(_, s)| s.as_ref())
        .flat_map(|s| s.av.iter().filter(|r| r.divergence != 0).map(move |r| (s.site, r)))
        .map(|(site, r)| format!("site {site} p{}: {:+}", r.product, r.divergence))
        .collect();
    if !diverged.is_empty() {
        let _ = writeln!(out, "unreplicated divergence: {}", diverged.join(", "));
    }
    // Trend panel: windowed rates from the series plane, when the cluster
    // was booted with `series_window_ticks > 0`. One row per site:
    // sparklines over the last windows plus the latest window's rates.
    const TREND_WINDOWS: usize = 12;
    let with_series: Vec<(&avdb::core::StatusSnapshot, &avdb::telemetry::SeriesSnapshot)> = rows
        .iter()
        .filter_map(|(_, s)| s.as_ref())
        .filter_map(|s| {
            s.series.as_ref().filter(|sn| !sn.windows.is_empty()).map(|sn| (s, sn))
        })
        .collect();
    if let Some((_, first)) = with_series.first() {
        let _ = writeln!(
            out,
            "trends (per {}-tick window, last {TREND_WINDOWS}):",
            first.window_ticks
        );
        let _ = writeln!(
            out,
            "  {:<4} {:<14} {:<14} {:<14} {:>8} {:>7}",
            "site", "commits", "aborts", "queue", "commit/w", "sent/w"
        );
        for (s, sn) in with_series {
            let commits = sn.counter_tail("update.committed", TREND_WINDOWS);
            let aborts = sn.counter_tail("update.aborted", TREND_WINDOWS);
            let queue: Vec<u64> = sn
                .gauge_tail("repl.queue.depth", TREND_WINDOWS)
                .iter()
                .map(|&v| v.max(0) as u64)
                .collect();
            let skip = sn.windows.len().saturating_sub(TREND_WINDOWS);
            let sent: Vec<u64> = sn
                .windows
                .iter()
                .skip(skip)
                .map(|w| {
                    w.counters
                        .iter()
                        .filter(|(k, _)| k.starts_with("msg.sent."))
                        .map(|(_, v)| v)
                        .sum()
                })
                .collect();
            let _ = writeln!(
                out,
                "  {:<4} {:<14} {:<14} {:<14} {:>8} {:>7}",
                s.site,
                avdb::telemetry::sparkline(&commits),
                avdb::telemetry::sparkline(&aborts),
                avdb::telemetry::sparkline(&queue),
                commits.last().copied().unwrap_or(0),
                sent.last().copied().unwrap_or(0)
            );
        }
    }
    // SLO panel: lane detail for every degraded site; all-green collapses
    // to a single line so the healthy steady state stays quiet.
    let degraded: Vec<&avdb::core::StatusSnapshot> = rows
        .iter()
        .filter_map(|(_, s)| s.as_ref())
        .filter(|s| s.slo.overall != avdb::telemetry::SloHealth::Green)
        .collect();
    if degraded.is_empty() {
        if rows.iter().any(|(_, s)| s.is_some()) {
            let _ = writeln!(out, "slo: GREEN (all lanes within budget)");
        }
    } else {
        for s in degraded {
            let _ = writeln!(out, "slo site {} [{}]:", s.site, s.slo.overall.label());
            let _ = write!(out, "{}", s.slo.render());
        }
    }
    out
}

/// Validates one site's `/metrics` exposition for `--check` mode.
fn check_metrics(target: &str) -> std::result::Result<(), String> {
    let (code, body) =
        http_get(target, "/metrics").map_err(|e| format!("{target}: /metrics: {e}"))?;
    if code != 200 {
        return Err(format!("{target}: /metrics returned HTTP {code}"));
    }
    avdb::telemetry::validate_exposition(&body).map_err(|e| format!("{target}: {e}"))?;
    let families = avdb::telemetry::metric_families(&body);
    for required in REQUIRED_FAMILIES {
        if !families.contains(*required) {
            return Err(format!("{target}: missing metric family {required}"));
        }
    }
    Ok(())
}

fn cmd_top(opts: &TopOpts) -> Result<()> {
    loop {
        let rows: Vec<(String, Option<avdb::core::StatusSnapshot>)> = opts
            .targets
            .iter()
            .map(|t| {
                let status = http_get(t, "/status")
                    .ok()
                    .filter(|(code, _)| *code == 200)
                    .and_then(|(_, body)| serde_json::from_str(&body).ok());
                (t.clone(), status)
            })
            .collect();
        if !opts.once {
            // Clear screen + home, like top(1).
            print!("\x1b[2J\x1b[H");
        }
        print!("{}", render_cluster_table(&rows));
        if opts.check {
            let mut failures: Vec<String> = rows
                .iter()
                .filter(|(_, s)| s.is_none())
                .map(|(t, _)| format!("{t}: /status unreachable or unparseable"))
                .collect();
            failures.extend(opts.targets.iter().filter_map(|t| check_metrics(t).err()));
            if failures.is_empty() {
                println!("check: ok ({} sites)", rows.len());
            } else {
                for f in &failures {
                    eprintln!("check failed: {f}");
                }
                return Err(AvdbError::InvalidConfig(format!(
                    "{} of {} checks failed",
                    failures.len(),
                    rows.len()
                )));
            }
        }
        if opts.once {
            return Ok(());
        }
        std::thread::sleep(std::time::Duration::from_millis(opts.interval_ms));
    }
}

const USAGE: &str = "usage: avdb <fig6|table1|ablations|faults|report|demo> \
[--updates N] [--ablation N] [--seed S] [--dir D]
       avdb serve [--sites N] [--seed S] [--updates N] [--hold-ms MS] \
[--series-window N] [--addr-file PATH] [--flight-dir DIR]
       avdb top --targets HOST:PORT,... [--interval-ms N] [--once] [--check]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    // serve/top parse their own flags.
    if cmd == "serve" || cmd == "top" {
        let result = match cmd.as_str() {
            "serve" => parse_serve_opts(rest).and_then(|o| cmd_serve(&o)),
            _ => parse_top_opts(rest).and_then(|o| cmd_top(&o)),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}\n{USAGE}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match parse_opts(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "fig6" => {
            cmd_fig6(&opts);
            Ok(())
        }
        "table1" => {
            cmd_table1(&opts);
            Ok(())
        }
        "ablations" => {
            cmd_ablations(&opts);
            Ok(())
        }
        "faults" => {
            cmd_faults(&opts);
            Ok(())
        }
        "report" => cmd_report(&opts),
        "demo" => cmd_demo(),
        other => {
            eprintln!("unknown command {other}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
