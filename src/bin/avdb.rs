//! `avdb` — command-line front end for the reproduction.
//!
//! ```sh
//! avdb fig6      [--updates N] [--seed S]     # E1: Fig. 6
//! avdb table1    [--updates N] [--seed S]     # E2: Table 1
//! avdb ablations [--updates N] [--seed S]     # A1–A4, A6–A10 sweeps
//! avdb faults    [--updates N] [--seed S]     # A5: crash experiments
//! avdb report    [--dir D] [--updates N] [--ablation N] [--seed S]
//! avdb demo                                    # 3-site walkthrough
//! ```

use avdb::prelude::*;
use avdb::sim::experiments::{
    ablations, circulation, freshness, mix, run_allocation_sweep, run_circulation,
    run_decide_sweep, run_fault_experiment, run_fig6, run_freshness, run_magnitude_sweep,
    run_mix, run_scaling, run_scaling_balanced, run_select_sweep, run_skew_sweep, run_table1,
    scaling,
};
use avdb::sim::{generate_report, ReportScale};
use std::path::PathBuf;
use std::process::ExitCode;

/// Parsed command-line options.
struct Opts {
    updates: usize,
    ablation_updates: usize,
    seed: u64,
    dir: PathBuf,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            updates: 10_000,
            ablation_updates: 3_000,
            seed: 1,
            dir: PathBuf::from("results/json"),
        }
    }
}

fn parse_opts(args: &[String]) -> Result<Opts> {
    let mut opts = Opts::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String> {
            it.next().ok_or_else(|| {
                AvdbError::InvalidConfig(format!("{name} requires a value"))
            })
        };
        match flag.as_str() {
            "--updates" => {
                opts.updates = value("--updates")?
                    .parse()
                    .map_err(|e| AvdbError::InvalidConfig(format!("--updates: {e}")))?;
            }
            "--ablation" => {
                opts.ablation_updates = value("--ablation")?
                    .parse()
                    .map_err(|e| AvdbError::InvalidConfig(format!("--ablation: {e}")))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| AvdbError::InvalidConfig(format!("--seed: {e}")))?;
            }
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            other => {
                return Err(AvdbError::InvalidConfig(format!("unknown flag {other}")));
            }
        }
    }
    Ok(opts)
}

fn cmd_fig6(opts: &Opts) {
    let result = run_fig6(opts.updates, opts.seed);
    println!("{}", result.render());
}

fn cmd_table1(opts: &Opts) {
    let step = (opts.updates / 5).max(1) as u64;
    let checkpoints: Vec<u64> = (1..=5).map(|i| i * step).collect();
    let result = run_table1(&checkpoints, opts.seed);
    println!("{}", result.render());
    println!(
        "retailer unfairness: {:.1}% (paper: \"almost same\")",
        result.retailer_unfairness() * 100.0
    );
}

fn cmd_ablations(opts: &Opts) {
    let (n, seed) = (opts.ablation_updates, opts.seed);
    println!("=== A1 deciding ===\n{}", ablations::render_rows(&run_decide_sweep(n, seed)));
    println!("=== A2 selecting ===\n{}", ablations::render_rows(&run_select_sweep(n, seed)));
    println!(
        "=== A3 scaling (paper rates) ===\n{}",
        scaling::render_rows(&run_scaling(&[3, 5, 9, 17], n, seed))
    );
    println!(
        "=== A3b scaling (balanced) ===\n{}",
        scaling::render_rows(&run_scaling_balanced(&[3, 5, 9, 17], n, seed))
    );
    println!(
        "=== A4 mix ===\n{}",
        mix::render_rows(&run_mix(&[0.0, 0.1, 0.25, 0.5, 1.0], n, seed))
    );
    println!("=== A6 allocation ===\n{}", ablations::render_rows(&run_allocation_sweep(n, seed)));
    println!("=== A7 skew ===\n{}", ablations::render_rows(&run_skew_sweep(n, seed)));
    println!("=== A8 magnitude ===\n{}", ablations::render_rows(&run_magnitude_sweep(n, seed)));
    println!(
        "=== A9 circulation ===\n{}",
        circulation::render_rows(&run_circulation(n, seed))
    );
    println!(
        "=== A10 freshness ===\n{}",
        freshness::render_rows(&run_freshness(&[1, 5, 25, 100], n, seed))
    );
}

fn cmd_faults(opts: &Opts) {
    for (label, site) in [("retailer (site2)", SiteId(2)), ("maker (site0)", SiteId(0))] {
        let r = run_fault_experiment(site, opts.ablation_updates, opts.seed);
        println!("=== crash of {label} ===");
        println!(
            "  proposal: {} commits total, {} during outage, converged={}",
            r.proposal_committed, r.proposal_committed_during_outage, r.converged_after_recovery
        );
        println!(
            "  conventional: {} commits total, {} during outage, worst latency {} ticks\n",
            r.conventional_committed,
            r.conventional_committed_during_outage,
            r.conventional_max_latency
        );
    }
}

fn cmd_report(opts: &Opts) -> Result<()> {
    let scale = ReportScale {
        paper_updates: opts.updates,
        ablation_updates: opts.ablation_updates,
        seed: opts.seed,
    };
    let written = generate_report(&opts.dir, scale)?;
    println!("wrote {} artifacts to {}", written.len(), opts.dir.display());
    Ok(())
}

fn cmd_demo() -> Result<()> {
    let config = SystemConfig::builder()
        .sites(3)
        .regular_products(1, Volume(90))
        .non_regular_products(1, Volume(30))
        .seed(42)
        .build()?;
    let mut system = DistributedSystem::new(config);
    system.enable_trace();
    system.submit_at(VirtualTime(0), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-20)));
    system.submit_at(VirtualTime(10), UpdateRequest::new(SiteId(1), ProductId(0), Volume(-25)));
    system.submit_at(VirtualTime(20), UpdateRequest::new(SiteId(2), ProductId(1), Volume(-5)));
    system.run_until_quiescent();
    for (at, site, outcome) in system.drain_outcomes() {
        println!("t={at:<3} {site}: {outcome:?}");
    }
    println!("\nmessage sequence:\n{}", avdb::simnet::render_sequence(system.trace()));
    Ok(())
}

const USAGE: &str = "usage: avdb <fig6|table1|ablations|faults|report|demo> \
[--updates N] [--ablation N] [--seed S] [--dir D]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match parse_opts(rest) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "fig6" => {
            cmd_fig6(&opts);
            Ok(())
        }
        "table1" => {
            cmd_table1(&opts);
            Ok(())
        }
        "ablations" => {
            cmd_ablations(&opts);
            Ok(())
        }
        "faults" => {
            cmd_faults(&opts);
            Ok(())
        }
        "report" => cmd_report(&opts),
        "demo" => cmd_demo(),
        other => {
            eprintln!("unknown command {other}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
