//! `avdb-trace` — record and inspect causal telemetry of one run.
//!
//! ```text
//! avdb-trace record [--transport sim|threads|tcp] [--sites N] [--seed N]
//!                   [--requests N] [--sample-milli N] [--series-window N]
//!                   [--out FILE]
//! avdb-trace report FILE [--limit N]
//! avdb-trace series FILE [--scope NAME] [--last N]
//! avdb-trace verify FILE
//! avdb-trace flight FILE
//! avdb-trace profile FILE
//! avdb-trace critical-path FILE TRACE
//! avdb-trace export-chrome FILE [--out FILE]
//! ```
//!
//! * `record` drives one seeded workload through the chosen transport with
//!   telemetry export enabled and writes the run as JSONL
//!   (`--sample-milli` sets the head-based trace sample rate in ‰,
//!   default 1000 = trace everything; `--series-window` sets the
//!   time-series window width in sim ticks, default 16, 0 = off).
//! * `report` renders per-update causal timelines, the latency breakdown
//!   by protocol phase (checking → selecting → deciding → transfer →
//!   commit), and message-amplification percentiles.
//! * `series` renders the run's windowed time-series scope: per site, a
//!   sparkline and totals for every counter, gauge trends, and the latest
//!   window's histogram deltas. Folds the JSONL incrementally — memory
//!   stays bounded by `--last`, not by the export size.
//! * `verify` checks span-tree completeness: every committed update must
//!   have a rooted tree with no orphan spans. Non-zero exit on failure.
//! * `flight` pretty-prints a flight-recorder dump (written by a site on a
//!   2PC abort / WAL recovery, or by a harness on an oracle violation) as
//!   one merged, time-ordered timeline across all sites.
//! * `profile` renders the run's critical-path phase profile (per-phase /
//!   per-site self-time histograms, cross-site link waits, exemplars).
//! * `critical-path` renders one update's annotated critical path (trace
//!   id decimal or `0x…` hex — take one from the profile's exemplars).
//! * `export-chrome` converts the run to Chrome `trace_event` JSON
//!   loadable in Perfetto / `chrome://tracing` (pid = site, tid = trace).
//!
//! The same trace ids flow through all three transports, so a sim
//! recording and a TCP recording of the same seed produce the same causal
//! shapes (the integration suite asserts this).

use avdb::core::{export_from_accelerators, Accelerator, DistributedSystem, Input};
use avdb::simnet::{DetRng, LiveRunner, TcpMesh};
use avdb::telemetry::analyze::{
    amplification, percentile_sorted, phase_breakdown, phase_sort_key, render_timeline, verify,
};
use avdb::telemetry::{is_aux_trace, RunExport};
use avdb::types::{
    ProductId, SiteId, SystemConfig, UpdateOutcome, UpdateRequest, VirtualTime, Volume,
};
use std::collections::BTreeSet;
use std::process::ExitCode;
use std::time::{Duration, Instant};

const TICKS_PER_REQUEST: u64 = 4;

fn usage() -> ! {
    eprintln!(
        "usage:\n  avdb-trace record [--transport sim|threads|tcp] [--sites N] [--seed N] \
         [--requests N] [--sample-milli N] [--series-window N] [--out FILE]\n  \
         avdb-trace report FILE [--limit N]\n  \
         avdb-trace series FILE [--scope NAME] [--last N]\n  \
         avdb-trace verify FILE\n  avdb-trace flight FILE\n  avdb-trace profile FILE\n  \
         avdb-trace critical-path FILE TRACE\n  avdb-trace export-chrome FILE [--out FILE]"
    );
    std::process::exit(2);
}

struct RecordArgs {
    transport: String,
    sites: usize,
    seed: u64,
    requests: usize,
    sample_milli: u32,
    series_window: u64,
    out: Option<String>,
}

fn parse_record(mut args: std::env::Args) -> RecordArgs {
    let mut rec = RecordArgs {
        transport: "sim".to_string(),
        sites: 4,
        seed: 1,
        requests: 40,
        sample_milli: 1000,
        series_window: 16,
        out: None,
    };
    while let Some(flag) = args.next() {
        let mut value = |n: &str| args.next().unwrap_or_else(|| panic!("{n} needs a value"));
        match flag.as_str() {
            "--transport" => rec.transport = value("--transport"),
            "--sites" => rec.sites = value("--sites").parse().unwrap_or_else(|_| usage()),
            "--seed" => rec.seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--requests" => {
                rec.requests = value("--requests").parse().unwrap_or_else(|_| usage())
            }
            "--sample-milli" => {
                rec.sample_milli =
                    value("--sample-milli").parse().unwrap_or_else(|_| usage())
            }
            "--series-window" => {
                rec.series_window =
                    value("--series-window").parse().unwrap_or_else(|_| usage())
            }
            "--out" => rec.out = Some(value("--out")),
            _ => usage(),
        }
    }
    if rec.sites == 0
        || rec.sample_milli > 1000
        || !["sim", "threads", "tcp"].contains(&rec.transport.as_str())
    {
        usage();
    }
    rec
}

/// The recording scenario: two AV-managed products plus one non-regular,
/// so both the Delay and the Immediate path appear in the trace.
fn config(sites: usize, seed: u64, sample_milli: u32, series_window: u64) -> SystemConfig {
    let mut builder = SystemConfig::builder()
        .sites(sites)
        .regular_products(2, Volume(40 * sites as i64))
        .non_regular_products(1, Volume(50))
        .series_window_ticks(series_window)
        .seed(seed);
    if sample_milli != 1000 {
        builder = builder.trace_sample_rate(f64::from(sample_milli) / 1000.0);
    }
    builder.build().expect("trace config is valid")
}

/// Deterministic mixed workload over all products (same seed → same
/// stream, whatever the transport).
fn workload(cfg: &SystemConfig, requests: usize) -> Vec<(VirtualTime, UpdateRequest)> {
    let mut rng = DetRng::new(cfg.seed).derive(0x7ACE);
    (0..requests)
        .map(|i| {
            let site = SiteId(rng.gen_range(cfg.n_sites as u64) as u32);
            let product = ProductId(rng.gen_range(3) as u32);
            let delta = if rng.gen_f64() < 0.65 {
                -rng.gen_i64_inclusive(1, 12)
            } else {
                rng.gen_i64_inclusive(1, 15)
            };
            (
                VirtualTime(i as u64 * TICKS_PER_REQUEST),
                UpdateRequest::new(site, product, Volume(delta)),
            )
        })
        .collect()
}

fn record_sim(cfg: &SystemConfig, requests: usize) -> RunExport {
    let schedule = workload(cfg, requests);
    let mut sys = DistributedSystem::new(cfg.clone());
    sys.enable_trace();
    for (at, req) in &schedule {
        sys.submit_at(*at, *req);
    }
    sys.run_until_quiescent();
    for _ in 0..50 {
        sys.flush_all();
        sys.run_until_quiescent();
        if sys.check_convergence().is_ok() {
            break;
        }
    }
    let outcomes = sys.drain_outcomes();
    sys.export_telemetry(&outcomes)
}

/// The pump surface the two live transports share.
trait Live {
    fn inject(&self, site: SiteId, input: Input);
    fn drain(&self) -> Vec<(VirtualTime, SiteId, UpdateOutcome)>;
    fn finish(
        self,
    ) -> (Vec<Accelerator>, avdb::simnet::RegistrySnapshot, Vec<avdb::simnet::MessageEvent>);
}

impl Live for LiveRunner<Accelerator> {
    fn inject(&self, site: SiteId, input: Input) {
        LiveRunner::inject(self, site, input);
    }
    fn drain(&self) -> Vec<(VirtualTime, SiteId, UpdateOutcome)> {
        self.drain_outputs()
    }
    fn finish(
        self,
    ) -> (Vec<Accelerator>, avdb::simnet::RegistrySnapshot, Vec<avdb::simnet::MessageEvent>) {
        let messages = self.message_log().events().to_vec();
        let (actors, counters, _) = self.shutdown();
        (actors, counters.registry().snapshot(), messages)
    }
}

impl Live for TcpMesh<Accelerator> {
    fn inject(&self, site: SiteId, input: Input) {
        TcpMesh::inject(self, site, input);
    }
    fn drain(&self) -> Vec<(VirtualTime, SiteId, UpdateOutcome)> {
        self.drain_outputs()
    }
    fn finish(
        self,
    ) -> (Vec<Accelerator>, avdb::simnet::RegistrySnapshot, Vec<avdb::simnet::MessageEvent>) {
        let messages = self.message_log().events().to_vec();
        let (actors, counters, _) = self.shutdown();
        (actors, counters.registry().snapshot(), messages)
    }
}

fn record_live(transport: &str, cfg: &SystemConfig, requests: usize, mesh: impl Live) -> RunExport {
    let schedule = workload(cfg, requests);
    for (_, req) in &schedule {
        mesh.inject(req.site, Input::Update(*req));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut outcomes = Vec::new();
    while outcomes.len() < requests && Instant::now() < deadline {
        outcomes.extend(mesh.drain());
        std::thread::sleep(Duration::from_millis(2));
    }
    // Anti-entropy rounds so replication (and its spans) settle too.
    for _ in 0..3 {
        for site in SiteId::all(cfg.n_sites) {
            mesh.inject(site, Input::FlushPropagation);
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    outcomes.extend(mesh.drain());
    let (actors, network, messages) = mesh.finish();
    export_from_accelerators(transport, cfg, &actors, &messages, network, &outcomes)
}

fn record(rec: RecordArgs) -> ExitCode {
    let cfg = config(rec.sites, rec.seed, rec.sample_milli, rec.series_window);
    let export = match rec.transport.as_str() {
        "sim" => record_sim(&cfg, rec.requests),
        "threads" => {
            let actors: Vec<Accelerator> =
                SiteId::all(cfg.n_sites).map(|s| Accelerator::new(s, &cfg)).collect();
            record_live("threads", &cfg, rec.requests, LiveRunner::spawn(actors, cfg.seed))
        }
        "tcp" => {
            let actors: Vec<Accelerator> =
                SiteId::all(cfg.n_sites).map(|s| Accelerator::new(s, &cfg)).collect();
            record_live("tcp", &cfg, rec.requests, TcpMesh::spawn(actors, cfg.seed))
        }
        _ => usage(),
    };
    let jsonl = export.to_jsonl();
    match &rec.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &jsonl) {
                eprintln!("avdb-trace: write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "avdb-trace: recorded {} spans, {} outcomes ({} transport) to {path}",
                export.spans.len(),
                export.outcomes.len(),
                rec.transport
            );
        }
        None => print!("{jsonl}"),
    }
    ExitCode::SUCCESS
}

/// Streams the export off disk line by line ([`RunExport::from_reader`])
/// instead of slurping the file into one `String` first — a 10⁵-update
/// recording parses without ever holding both the text and the parsed
/// structure in memory.
fn load(path: &str) -> Result<RunExport, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    RunExport::from_reader(std::io::BufReader::new(file)).map_err(|e| format!("{path}: {e}"))
}

fn report(path: &str, limit: usize) -> ExitCode {
    let export = match load(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("avdb-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(meta) = &export.meta {
        println!(
            "run: transport={} sites={} seed={}",
            meta.transport, meta.sites, meta.seed
        );
    }
    println!(
        "{} spans, {} messages, {} outcomes\n",
        export.spans.len(),
        export.messages.len(),
        export.outcomes.len()
    );

    // Per-update causal timelines, in outcome order.
    let mut shown = BTreeSet::new();
    for outcome in &export.outcomes {
        if shown.len() >= limit {
            println!("... ({} more updates; raise --limit)", export.outcomes.len() - shown.len());
            break;
        }
        if shown.insert(outcome.txn) {
            let verdict = if outcome.committed { "committed" } else { "aborted" };
            println!(
                "update {:#x} at site{} — {verdict} ({} correspondences)",
                outcome.txn, outcome.site, outcome.correspondences
            );
            print!("{}", render_timeline(&export, outcome.txn));
        }
    }

    // Latency breakdown by protocol phase.
    println!("\nphase breakdown (closed spans, update traces only):");
    let phases = phase_breakdown(&export);
    let mut names: Vec<&String> = phases.keys().collect();
    names.sort_by_key(|n| phase_sort_key(n));
    println!("  {:<12} {:>7} {:>10} {:>8}", "phase", "count", "mean", "max");
    for name in names {
        let s = &phases[name];
        println!("  {:<12} {:>7} {:>10.2} {:>8}", name, s.count, s.mean(), s.max);
    }

    // Message amplification: correspondences per committed update.
    let amp = amplification(&export);
    println!("\ncorrespondences per committed update ({} commits):", amp.len());
    for (label, p) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99)] {
        println!("  {label}: {}", percentile_sorted(&amp, p));
    }
    println!("  max: {}", amp.last().copied().unwrap_or(0));

    // Registry summary: network traffic by message kind.
    if let Some(net) = export.registry("network") {
        println!("\nnetwork messages by kind:");
        for (kind, n) in net.counters.iter().filter_map(|(k, n)| {
            k.strip_prefix("msg.kind.").map(|kind| (kind, n))
        }) {
            println!("  {kind:<16} {n}");
        }
    }
    // Series plane: point at the dedicated renderer rather than inlining.
    let scopes = export.series_scopes();
    if !scopes.is_empty() {
        println!(
            "\nseries: {} windows across {} scopes (render with `avdb-trace series`)",
            export.series.len(),
            scopes.len()
        );
    }
    let aux = export.spans.iter().filter(|s| is_aux_trace(s.trace)).count();
    println!("\n{} auxiliary (replication/push) spans", aux);
    ExitCode::SUCCESS
}

/// One scope's rolling tail of series windows, folded incrementally.
#[derive(Default)]
struct ScopeTail {
    window_ticks: u64,
    total_windows: u64,
    tail: std::collections::VecDeque<avdb::telemetry::SeriesWindowSnapshot>,
}

/// Renders the export's `series` scope as per-site sparkline panels.
/// Streams the JSONL with [`for_each_line`], keeping only the last
/// `last` windows per scope, so memory is O(scopes × last) regardless of
/// export size.
fn series_file(path: &str, scope_filter: Option<&str>, last: usize) -> ExitCode {
    use avdb::telemetry::{for_each_line, sparkline, ExportLine};
    let file = match std::fs::File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("avdb-trace: open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut scopes: std::collections::BTreeMap<String, ScopeTail> = std::collections::BTreeMap::new();
    let folded = for_each_line(std::io::BufReader::new(file), |line| {
        if let ExportLine::Series(l) = line {
            if scope_filter.map_or(true, |s| s == l.scope) {
                let entry = scopes.entry(l.scope).or_default();
                entry.window_ticks = l.window_ticks;
                entry.total_windows += 1;
                entry.tail.push_back(l.window);
                if entry.tail.len() > last {
                    entry.tail.pop_front();
                }
            }
        }
        Ok(())
    });
    if let Err(e) = folded {
        eprintln!("avdb-trace: {path}: {e}");
        return ExitCode::FAILURE;
    }
    if scopes.is_empty() {
        match scope_filter {
            Some(s) => eprintln!(
                "avdb-trace: no series windows for scope {s:?} in {path} \
                 (recorded without --series-window?)"
            ),
            None => eprintln!(
                "avdb-trace: no series windows in {path} (recorded without --series-window?)"
            ),
        }
        return ExitCode::FAILURE;
    }
    for (scope, tail) in &scopes {
        println!(
            "{scope}: {} windows of {} ticks (showing last {})",
            tail.total_windows,
            tail.window_ticks,
            tail.tail.len()
        );
        let shown: Vec<_> = tail.tail.iter().collect();
        let counter_names: BTreeSet<&str> =
            shown.iter().flat_map(|w| w.counters.keys().map(String::as_str)).collect();
        if !counter_names.is_empty() {
            println!("  counters (delta per window):");
            for name in counter_names {
                let vals: Vec<u64> =
                    shown.iter().map(|w| w.counters.get(name).copied().unwrap_or(0)).collect();
                let total: u64 = vals.iter().sum();
                println!(
                    "    {name:<28} {}  last {:>6}  Σ {total}",
                    sparkline(&vals),
                    vals.last().copied().unwrap_or(0)
                );
            }
        }
        let gauge_names: BTreeSet<&str> =
            shown.iter().flat_map(|w| w.gauges.keys().map(String::as_str)).collect();
        if !gauge_names.is_empty() {
            println!("  gauges (value at window end):");
            for name in gauge_names {
                let vals: Vec<i64> =
                    shown.iter().map(|w| w.gauges.get(name).copied().unwrap_or(0)).collect();
                let bars: Vec<u64> = vals.iter().map(|&v| v.max(0) as u64).collect();
                println!(
                    "    {name:<28} {}  last {:>6}",
                    sparkline(&bars),
                    vals.last().copied().unwrap_or(0)
                );
            }
        }
        if let Some(latest) = shown.last() {
            if !latest.histograms.is_empty() {
                println!("  histograms (latest window, ticks {}..{}):", latest.start, latest.end);
                for (name, h) in &latest.histograms {
                    println!(
                        "    {name:<28} n {:>6}  p50 {:>6}  p99 {:>6}  max {:>6}",
                        h.count,
                        h.percentile(0.5),
                        h.percentile(0.99),
                        h.max
                    );
                }
            }
        }
        println!();
    }
    ExitCode::SUCCESS
}

fn verify_file(path: &str) -> ExitCode {
    let export = match load(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("avdb-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = verify(&export);
    print!("{report}");
    if report.is_ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn profile_file(path: &str) -> ExitCode {
    let export = match load(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("avdb-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Prefer the profile the run itself exported (it reflects the run's
    // sampling decisions); recompute only for exports that predate it.
    let profile = export
        .profile
        .clone()
        .unwrap_or_else(|| avdb::telemetry::profile_export(&export));
    print!("{}", profile.render());
    ExitCode::SUCCESS
}

fn parse_trace_id(raw: &str) -> Option<u64> {
    match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
}

fn critical_path_file(path: &str, trace_raw: &str) -> ExitCode {
    let Some(trace) = parse_trace_id(trace_raw) else {
        eprintln!("avdb-trace: bad trace id {trace_raw:?} (decimal or 0x-hex)");
        return ExitCode::FAILURE;
    };
    let export = match load(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("avdb-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    match avdb::telemetry::path_for_trace(&export, trace) {
        Some(p) => {
            print!("{}", avdb::telemetry::render_path(&p));
            ExitCode::SUCCESS
        }
        None => {
            eprintln!(
                "avdb-trace: trace {trace:#x} has no closed root span in {path} \
                 (not recorded, sampled away, or never finished)"
            );
            ExitCode::FAILURE
        }
    }
}

fn export_chrome_file(path: &str, out: Option<&str>) -> ExitCode {
    let export = match load(path) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("avdb-trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    let json = avdb::telemetry::chrome_trace(&export);
    match out {
        Some(dest) => {
            if let Err(e) = std::fs::write(dest, &json) {
                eprintln!("avdb-trace: write {dest}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!(
                "avdb-trace: wrote {} events to {dest} (open in Perfetto or chrome://tracing)",
                export.spans.len()
            );
        }
        None => print!("{json}"),
    }
    ExitCode::SUCCESS
}

fn flight_file(path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("avdb-trace: read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match avdb::telemetry::FlightDump::from_json(&text) {
        Ok(dump) => {
            print!("{}", dump.render());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("avdb-trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    match args.next().as_deref() {
        Some("record") => record(parse_record(args)),
        Some("flight") => {
            let Some(path) = args.next() else { usage() };
            flight_file(&path)
        }
        Some("report") => {
            let Some(path) = args.next() else { usage() };
            let mut limit = 10;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--limit" => {
                        limit = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            report(&path, limit)
        }
        Some("series") => {
            let Some(path) = args.next() else { usage() };
            let mut scope = None;
            let mut last = 32usize;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--scope" => scope = args.next(),
                    "--last" => {
                        last = args
                            .next()
                            .and_then(|v| v.parse().ok())
                            .filter(|&n| n > 0)
                            .unwrap_or_else(|| usage())
                    }
                    _ => usage(),
                }
            }
            series_file(&path, scope.as_deref(), last)
        }
        Some("verify") => {
            let Some(path) = args.next() else { usage() };
            verify_file(&path)
        }
        Some("profile") => {
            let Some(path) = args.next() else { usage() };
            profile_file(&path)
        }
        Some("critical-path") => {
            let Some(path) = args.next() else { usage() };
            let Some(trace) = args.next() else { usage() };
            critical_path_file(&path, &trace)
        }
        Some("export-chrome") => {
            let Some(path) = args.next() else { usage() };
            let mut out = None;
            while let Some(flag) = args.next() {
                match flag.as_str() {
                    "--out" => out = args.next(),
                    _ => usage(),
                }
            }
            export_chrome_file(&path, out.as_deref())
        }
        _ => usage(),
    }
}
