//! `avdb-bench` — the workload-matrix benchmark harness.
//!
//! `run` expands a matrix of {transport, site count, fault profile, AV
//! allocation, zipf skew, propagation batch} cells, executes every cell
//! seeded and oracle-checked, and writes `results/BENCH_<label>.json`
//! (machine-readable trajectory) plus `BENCH_<label>.txt` (human table).
//! `compare` gates a fresh report against a committed baseline.
//!
//! ```sh
//! avdb-bench run --transports sim,threads,tcp --sites 3,7 --label local
//! avdb-bench compare results/BENCH_baseline.json results/BENCH_local.json
//! ```

use avdb::bench::report::compare;
use avdb::bench::{
    run_scenario, run_scenario_with_flight_dir, BenchReport, FaultProfile, ScenarioSpec,
    TransportKind,
};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         avdb-bench run [--transports sim,threads,tcp] [--sites 3,7] [--updates N]\n    \
         [--faults clean,loss,crash,partition] [--alloc uniform,all-at-base,...]\n    \
         [--zipf 0,900] [--batch 1,4] [--fanout 0,4] [--rebalance 0,512]\n    \
         [--coalesce 0,1] [--sample-milli 0,10,1000] [--series-window 0,64]\n    \
         [--scenarios none|all|flash-sale,kill-the-granter,...]\n    \
         [--imm-products N] [--regular-products N]\n    \
         [--stock N] [--spacing N] [--seed N] [--open-loop] [--label L] [--out DIR]\n    \
         [--flight-dir DIR]\n  \
         avdb-bench overhead [--updates N] [--sites N] [--seed N] [--window N]\n    \
         [--rounds N] [--max-overhead-pct N] [--series-out FILE]\n  \
         avdb-bench compare <baseline.json> <current.json> [--max-regress-pct N]"
    );
    std::process::exit(2);
}

fn parse_list<T, F: Fn(&str) -> Option<T>>(flag: &str, raw: &str, f: F) -> Vec<T> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            f(s).unwrap_or_else(|| {
                eprintln!("avdb-bench: bad value '{s}' for {flag}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("overhead") => cmd_overhead(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        _ => usage(),
    }
}

/// Expands the fast-lane flag lists into the cross product of
/// (fanout, rebalance horizon, coalesce) cells, in flag order.
fn fast_lane_cells(
    fanouts: &[usize],
    rebalances: &[u64],
    coalesces: &[bool],
) -> Vec<(usize, u64, bool)> {
    let mut cells = Vec::new();
    for &fanout in fanouts {
        for &rebalance in rebalances {
            for &coalesce in coalesces {
                cells.push((fanout, rebalance, coalesce));
            }
        }
    }
    cells
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut transports = vec![TransportKind::Sim];
    let mut sites = vec![3usize, 7];
    let mut updates_list: Vec<usize> = Vec::new();
    let mut faults = vec![FaultProfile::Clean];
    let mut allocs = vec![avdb::types::AvAllocation::Uniform];
    let mut zipfs = vec![0u64];
    let mut batches = vec![1usize];
    let mut fanouts = vec![0usize];
    let mut rebalances = vec![0u64];
    let mut coalesces = vec![false];
    let mut sample_millis = vec![0u32];
    let mut series_windows = vec![0u64];
    let mut scenarios: Vec<Option<String>> = vec![None];
    let mut base = ScenarioSpec::base();
    let mut label = String::from("local");
    let mut out_dir = String::from("results");
    let mut flight_dir: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("avdb-bench: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--transports" => {
                transports = parse_list(arg, &value(arg), TransportKind::parse);
            }
            "--sites" => sites = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--faults" => faults = parse_list(arg, &value(arg), FaultProfile::parse),
            "--alloc" => {
                allocs = parse_list(arg, &value(arg), avdb::bench::matrix::parse_allocation);
            }
            "--zipf" => zipfs = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--batch" => batches = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--fanout" => fanouts = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--rebalance" => rebalances = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--coalesce" => {
                coalesces = parse_list(arg, &value(arg), |s| match s {
                    "0" | "false" => Some(false),
                    "1" | "true" => Some(true),
                    _ => None,
                });
            }
            "--sample-milli" => {
                sample_millis =
                    parse_list(arg, &value(arg), |s| s.parse().ok().filter(|&m| m <= 1000));
            }
            "--series-window" => {
                series_windows = parse_list(arg, &value(arg), |s| s.parse().ok());
            }
            "--scenarios" => {
                let raw = value(arg);
                scenarios = if raw == "all" {
                    avdb::chaos::Scenario::ALL
                        .iter()
                        .map(|sc| Some(sc.name().to_string()))
                        .collect()
                } else {
                    parse_list(arg, &raw, |s| {
                        if s == "none" {
                            Some(None)
                        } else {
                            avdb::chaos::Scenario::parse(s).map(|sc| Some(sc.name().to_string()))
                        }
                    })
                };
            }
            "--updates" => updates_list = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--imm-products" => {
                base.non_regular_products = value(arg).parse().unwrap_or_else(|_| usage());
            }
            "--regular-products" => {
                base.regular_products = value(arg).parse().unwrap_or_else(|_| usage());
            }
            "--stock" => base.initial_stock = value(arg).parse().unwrap_or_else(|_| usage()),
            "--spacing" => base.spacing = value(arg).parse().unwrap_or_else(|_| usage()),
            "--seed" => base.seed = value(arg).parse().unwrap_or_else(|_| usage()),
            "--open-loop" => base.closed_loop = false,
            "--label" => label = value(arg),
            "--out" => out_dir = value(arg),
            "--flight-dir" => flight_dir = Some(value(arg)),
            _ => usage(),
        }
    }

    // `--updates` is a scale axis like `--sites`: each listed count is a
    // separate matrix cell, distinguished by the label's `-uN` segment.
    if updates_list.is_empty() {
        updates_list.push(base.updates);
    }
    let mut report = BenchReport {
        label: label.clone(),
        scenarios: Vec::new(),
    };
    let mut failures = 0usize;
    for &transport in &transports {
        for &n in &sites {
            for &updates in &updates_list {
                for &fault in &faults {
                    for &allocation in &allocs {
                        for &zipf_milli in &zipfs {
                            for &batch in &batches {
                                for &(fanout, rebalance, coalesce) in
                                    fast_lane_cells(&fanouts, &rebalances, &coalesces).iter()
                                {
                                    for ((scenario, &sample_milli), &series_window) in scenarios
                                        .iter()
                                        .flat_map(|sc| sample_millis.iter().map(move |m| (sc, m)))
                                        .flat_map(|pair| {
                                            series_windows.iter().map(move |w| (pair, w))
                                        })
                                    {
                                        let mut spec = base.clone();
                                        spec.transport = transport;
                                        spec.sites = n;
                                        spec.updates = updates;
                                        spec.fault = fault;
                                        spec.allocation = allocation;
                                        spec.zipf_milli = zipf_milli;
                                        spec.propagation_batch = batch;
                                        spec.shortage_fanout = fanout;
                                        spec.rebalance_horizon_ticks = rebalance;
                                        spec.coalesce_propagation = coalesce;
                                        spec.trace_sample_milli = sample_milli;
                                        spec.series_window_ticks = series_window;
                                        spec.scenario = scenario.clone();
                                        if transport != TransportKind::Sim
                                            && (fault != FaultProfile::Clean
                                                || spec.scenario.is_some())
                                        {
                                            eprintln!(
                                                "skip {}: faults and scenarios need the \
                                             deterministic scheduler",
                                                spec.label()
                                            );
                                            continue;
                                        }
                                        eprint!("running {} ... ", spec.label());
                                        match run_scenario_with_flight_dir(
                                            &spec,
                                            flight_dir.as_ref().map(std::path::Path::new),
                                        ) {
                                            Ok(arts) => {
                                                eprintln!(
                                                    "ok ({}/{} committed)",
                                                    arts.result.stats.committed,
                                                    arts.result.stats.submitted
                                                );
                                                report.scenarios.push(arts.result);
                                            }
                                            Err(e) => {
                                                eprintln!("FAILED: {e}");
                                                failures += 1;
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    if report.scenarios.is_empty() {
        eprintln!("avdb-bench: no scenario produced results");
        return ExitCode::FAILURE;
    }
    let dir = Path::new(&out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("avdb-bench: cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    let json_path = dir.join(format!("BENCH_{label}.json"));
    let table_path = dir.join(format!("BENCH_{label}.txt"));
    let table = report.render_table();
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("avdb-bench: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&table_path, &table) {
        eprintln!("avdb-bench: cannot write {}: {e}", table_path.display());
        return ExitCode::FAILURE;
    }
    println!("{table}");
    println!("wrote {}", json_path.display());
    if failures > 0 {
        eprintln!("avdb-bench: {failures} scenario(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// The telemetry-overhead gate: runs one sim cell twice — series plane
/// off, then on — best-of-`rounds` each, and fails when the series plane
/// costs more than `--max-overhead-pct` wall time, records no windows,
/// or perturbs any deterministic statistic. `--series-out` dumps the
/// instrumented run's JSONL export for the CI artifact.
fn cmd_overhead(args: &[String]) -> ExitCode {
    let mut spec = ScenarioSpec::base();
    spec.sites = 7;
    spec.updates = 100_000;
    // Scale-matched default: the 100k-update cell spans ~4M ticks, so
    // 4096-tick windows give ~100-update rate resolution while keeping
    // boundary work (one roll per window per site) out of the hot path.
    let mut window = 4096u64;
    let mut rounds = 3usize;
    let mut max_overhead_pct = 5u64;
    let mut series_out: Option<String> = None;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("avdb-bench: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--updates" => spec.updates = value(arg).parse().unwrap_or_else(|_| usage()),
            "--sites" => spec.sites = value(arg).parse().unwrap_or_else(|_| usage()),
            "--seed" => spec.seed = value(arg).parse().unwrap_or_else(|_| usage()),
            "--window" => window = value(arg).parse().unwrap_or_else(|_| usage()),
            "--rounds" => rounds = value(arg).parse().unwrap_or_else(|_| usage()),
            "--max-overhead-pct" => {
                max_overhead_pct = value(arg).parse().unwrap_or_else(|_| usage());
            }
            "--series-out" => series_out = Some(value(arg)),
            _ => usage(),
        }
    }
    if window == 0 || rounds == 0 {
        usage();
    }

    // Best-of-N wall time per variant, with the variants interleaved
    // round-by-round: the min is the least-noisy estimate of a cell's
    // intrinsic cost on a busy CI box, and interleaving keeps slow drift
    // (a neighbour job starting mid-gate) from biasing one variant.
    let mut on_spec = spec.clone();
    on_spec.series_window_ticks = window;
    let run_round = |spec: &ScenarioSpec,
                     round: usize,
                     champion: &mut Option<(u64, avdb::bench::RunArtifacts)>|
     -> Result<(), String> {
        eprint!(
            "running {} (round {}/{rounds}) ... ",
            spec.label(),
            round + 1
        );
        let arts = run_scenario(spec)?;
        let ms = arts.result.wall.elapsed_ms.max(1);
        eprintln!("{ms} ms");
        if champion.as_ref().map_or(true, |(champ, _)| ms < *champ) {
            *champion = Some((ms, arts));
        }
        Ok(())
    };
    let mut best_off: Option<(u64, avdb::bench::RunArtifacts)> = None;
    let mut best_on: Option<(u64, avdb::bench::RunArtifacts)> = None;
    for round in 0..rounds {
        if let Err(e) = run_round(&spec, round, &mut best_off)
            .and_then(|()| run_round(&on_spec, round, &mut best_on))
        {
            eprintln!("avdb-bench: overhead cell failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    let (off_ms, off_arts) = best_off.expect("rounds >= 1");
    let (on_ms, on_arts) = best_on.expect("rounds >= 1");

    let mut failures = Vec::new();
    // The series plane must not change what the protocol *did* — only
    // observe it. Deterministic stats are byte-comparable across the two
    // variants because the sim schedule ignores telemetry entirely.
    if off_arts.result.stats != on_arts.result.stats {
        failures.push("deterministic stats differ between series-on and series-off".to_string());
    }
    let scopes = on_arts.export.series_scopes().len();
    let windows = on_arts.export.series.len();
    if windows == 0 {
        failures.push("series-on run exported no series windows".to_string());
    }
    let overhead_pct = (on_ms.saturating_sub(off_ms)) * 100 / off_ms;
    if overhead_pct > max_overhead_pct {
        failures.push(format!(
            "series plane costs {overhead_pct}% wall time \
             ({on_ms} ms vs {off_ms} ms; budget {max_overhead_pct}%)"
        ));
    }
    println!(
        "overhead {}: off {off_ms} ms, on {on_ms} ms ({overhead_pct}% overhead, budget \
         {max_overhead_pct}%); {windows} series windows across {scopes} scopes",
        spec.label()
    );
    if let Some(path) = &series_out {
        if let Err(e) = std::fs::write(path, on_arts.export.to_jsonl()) {
            eprintln!("avdb-bench: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote instrumented export to {path}");
    }
    if failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("overhead gate failed: {f}");
        }
        ExitCode::FAILURE
    }
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut max_regress_pct = 25u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regress-pct" => {
                max_regress_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => paths.push(arg.clone()),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let load = |p: &str| -> BenchReport {
        let raw = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("avdb-bench: cannot read {p}: {e}");
            std::process::exit(1);
        });
        BenchReport::from_json(&raw).unwrap_or_else(|e| {
            eprintln!("avdb-bench: {p}: {e}");
            std::process::exit(1);
        })
    };
    let baseline = load(&paths[0]);
    let current = load(&paths[1]);
    match compare(&baseline, &current, max_regress_pct) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
            println!(
                "throughput, shortage rate, and amplification p95 within \
                 {max_regress_pct}% of baseline"
            );
            ExitCode::SUCCESS
        }
        Err(violations) => {
            for v in violations {
                eprintln!("{v}");
            }
            eprintln!("avdb-bench: regression gate failed");
            ExitCode::FAILURE
        }
    }
}
