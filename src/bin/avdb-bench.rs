//! `avdb-bench` — the workload-matrix benchmark harness.
//!
//! `run` expands a matrix of {transport, site count, fault profile, AV
//! allocation, zipf skew, propagation batch} cells, executes every cell
//! seeded and oracle-checked, and writes `results/BENCH_<label>.json`
//! (machine-readable trajectory) plus `BENCH_<label>.txt` (human table).
//! `compare` gates a fresh report against a committed baseline.
//!
//! ```sh
//! avdb-bench run --transports sim,threads,tcp --sites 3,7 --label local
//! avdb-bench compare results/BENCH_baseline.json results/BENCH_local.json
//! ```

use avdb::bench::report::compare;
use avdb::bench::{
    run_scenario, BenchReport, FaultProfile, ScenarioSpec, TransportKind,
};
use std::path::Path;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage:\n  \
         avdb-bench run [--transports sim,threads,tcp] [--sites 3,7] [--updates N]\n    \
         [--faults clean,loss,crash,partition] [--alloc uniform,all-at-base,...]\n    \
         [--zipf 0,900] [--batch 1,4] [--fanout 0,4] [--rebalance 0,512]\n    \
         [--coalesce 0,1] [--sample-milli 0,10,1000]\n    \
         [--scenarios none|all|flash-sale,kill-the-granter,...]\n    \
         [--imm-products N] [--regular-products N]\n    \
         [--stock N] [--spacing N] [--seed N] [--open-loop] [--label L] [--out DIR]\n  \
         avdb-bench compare <baseline.json> <current.json> [--max-regress-pct N]"
    );
    std::process::exit(2);
}

fn parse_list<T, F: Fn(&str) -> Option<T>>(flag: &str, raw: &str, f: F) -> Vec<T> {
    raw.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            f(s).unwrap_or_else(|| {
                eprintln!("avdb-bench: bad value '{s}' for {flag}");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("compare") => cmd_compare(&args[1..]),
        _ => usage(),
    }
}

/// Expands the fast-lane flag lists into the cross product of
/// (fanout, rebalance horizon, coalesce) cells, in flag order.
fn fast_lane_cells(
    fanouts: &[usize],
    rebalances: &[u64],
    coalesces: &[bool],
) -> Vec<(usize, u64, bool)> {
    let mut cells = Vec::new();
    for &fanout in fanouts {
        for &rebalance in rebalances {
            for &coalesce in coalesces {
                cells.push((fanout, rebalance, coalesce));
            }
        }
    }
    cells
}

fn cmd_run(args: &[String]) -> ExitCode {
    let mut transports = vec![TransportKind::Sim];
    let mut sites = vec![3usize, 7];
    let mut faults = vec![FaultProfile::Clean];
    let mut allocs = vec![avdb::types::AvAllocation::Uniform];
    let mut zipfs = vec![0u64];
    let mut batches = vec![1usize];
    let mut fanouts = vec![0usize];
    let mut rebalances = vec![0u64];
    let mut coalesces = vec![false];
    let mut sample_millis = vec![0u32];
    let mut scenarios: Vec<Option<String>> = vec![None];
    let mut base = ScenarioSpec::base();
    let mut label = String::from("local");
    let mut out_dir = String::from("results");

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("avdb-bench: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--transports" => {
                transports = parse_list(arg, &value(arg), TransportKind::parse);
            }
            "--sites" => sites = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--faults" => faults = parse_list(arg, &value(arg), FaultProfile::parse),
            "--alloc" => {
                allocs = parse_list(arg, &value(arg), avdb::bench::matrix::parse_allocation);
            }
            "--zipf" => zipfs = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--batch" => batches = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--fanout" => fanouts = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--rebalance" => rebalances = parse_list(arg, &value(arg), |s| s.parse().ok()),
            "--coalesce" => {
                coalesces = parse_list(arg, &value(arg), |s| match s {
                    "0" | "false" => Some(false),
                    "1" | "true" => Some(true),
                    _ => None,
                });
            }
            "--sample-milli" => {
                sample_millis = parse_list(arg, &value(arg), |s| {
                    s.parse().ok().filter(|&m| m <= 1000)
                });
            }
            "--scenarios" => {
                let raw = value(arg);
                scenarios = if raw == "all" {
                    avdb::chaos::Scenario::ALL
                        .iter()
                        .map(|sc| Some(sc.name().to_string()))
                        .collect()
                } else {
                    parse_list(arg, &raw, |s| {
                        if s == "none" {
                            Some(None)
                        } else {
                            avdb::chaos::Scenario::parse(s).map(|sc| Some(sc.name().to_string()))
                        }
                    })
                };
            }
            "--updates" => base.updates = value(arg).parse().unwrap_or_else(|_| usage()),
            "--imm-products" => {
                base.non_regular_products = value(arg).parse().unwrap_or_else(|_| usage());
            }
            "--regular-products" => {
                base.regular_products = value(arg).parse().unwrap_or_else(|_| usage());
            }
            "--stock" => base.initial_stock = value(arg).parse().unwrap_or_else(|_| usage()),
            "--spacing" => base.spacing = value(arg).parse().unwrap_or_else(|_| usage()),
            "--seed" => base.seed = value(arg).parse().unwrap_or_else(|_| usage()),
            "--open-loop" => base.closed_loop = false,
            "--label" => label = value(arg),
            "--out" => out_dir = value(arg),
            _ => usage(),
        }
    }

    let mut report = BenchReport { label: label.clone(), scenarios: Vec::new() };
    let mut failures = 0usize;
    for &transport in &transports {
        for &n in &sites {
            for &fault in &faults {
                for &allocation in &allocs {
                    for &zipf_milli in &zipfs {
                        for &batch in &batches {
                            for &(fanout, rebalance, coalesce) in fast_lane_cells(
                                &fanouts,
                                &rebalances,
                                &coalesces,
                            )
                            .iter()
                            {
                                for (scenario, &sample_milli) in scenarios
                                    .iter()
                                    .flat_map(|sc| {
                                        sample_millis.iter().map(move |m| (sc, m))
                                    })
                                {
                                    let mut spec = base.clone();
                                    spec.transport = transport;
                                    spec.sites = n;
                                    spec.fault = fault;
                                    spec.allocation = allocation;
                                    spec.zipf_milli = zipf_milli;
                                    spec.propagation_batch = batch;
                                    spec.shortage_fanout = fanout;
                                    spec.rebalance_horizon_ticks = rebalance;
                                    spec.coalesce_propagation = coalesce;
                                    spec.trace_sample_milli = sample_milli;
                                    spec.scenario = scenario.clone();
                                    if transport != TransportKind::Sim
                                        && (fault != FaultProfile::Clean
                                            || spec.scenario.is_some())
                                    {
                                        eprintln!(
                                            "skip {}: faults and scenarios need the \
                                             deterministic scheduler",
                                            spec.label()
                                        );
                                        continue;
                                    }
                                    eprint!("running {} ... ", spec.label());
                                    match run_scenario(&spec) {
                                        Ok(arts) => {
                                            eprintln!(
                                                "ok ({}/{} committed)",
                                                arts.result.stats.committed,
                                                arts.result.stats.submitted
                                            );
                                            report.scenarios.push(arts.result);
                                        }
                                        Err(e) => {
                                            eprintln!("FAILED: {e}");
                                            failures += 1;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    if report.scenarios.is_empty() {
        eprintln!("avdb-bench: no scenario produced results");
        return ExitCode::FAILURE;
    }
    let dir = Path::new(&out_dir);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("avdb-bench: cannot create {out_dir}: {e}");
        return ExitCode::FAILURE;
    }
    let json_path = dir.join(format!("BENCH_{label}.json"));
    let table_path = dir.join(format!("BENCH_{label}.txt"));
    let table = report.render_table();
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("avdb-bench: cannot write {}: {e}", json_path.display());
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&table_path, &table) {
        eprintln!("avdb-bench: cannot write {}: {e}", table_path.display());
        return ExitCode::FAILURE;
    }
    println!("{table}");
    println!("wrote {}", json_path.display());
    if failures > 0 {
        eprintln!("avdb-bench: {failures} scenario(s) failed");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_compare(args: &[String]) -> ExitCode {
    let mut paths = Vec::new();
    let mut max_regress_pct = 25u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--max-regress-pct" => {
                max_regress_pct = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => paths.push(arg.clone()),
        }
    }
    if paths.len() != 2 {
        usage();
    }
    let load = |p: &str| -> BenchReport {
        let raw = std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("avdb-bench: cannot read {p}: {e}");
            std::process::exit(1);
        });
        BenchReport::from_json(&raw).unwrap_or_else(|e| {
            eprintln!("avdb-bench: {p}: {e}");
            std::process::exit(1);
        })
    };
    let baseline = load(&paths[0]);
    let current = load(&paths[1]);
    match compare(&baseline, &current, max_regress_pct) {
        Ok(lines) => {
            for line in lines {
                println!("{line}");
            }
            println!(
                "throughput, shortage rate, and amplification p95 within \
                 {max_regress_pct}% of baseline"
            );
            ExitCode::SUCCESS
        }
        Err(violations) => {
            for v in violations {
                eprintln!("{v}");
            }
            eprintln!("avdb-bench: regression gate failed");
            ExitCode::FAILURE
        }
    }
}
