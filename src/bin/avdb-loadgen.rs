//! `avdb-loadgen` — drive a live TCP cluster through the wire-protocol
//! gateway with many concurrent pipelined client connections, then
//! oracle-check the run and write `results/BENCH_<label>.json` / `.txt`.
//!
//! ```text
//! avdb-loadgen [--sites 7] [--updates 100000] [--connections 256]
//!              [--window 32] [--seed 1] [--label loadgen]
//!              [--out-dir results] [--flight-dir DIR] [--read-permille 10]
//! ```
//!
//! Exit status is non-zero if the conformance oracle finds a violation
//! (the BENCH files are still written, for post-mortem upload).

use avdb::loadgen::{run, LoadgenSpec};
use std::path::PathBuf;

fn main() {
    let mut spec = LoadgenSpec::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            it.next().unwrap_or_else(|| die(&format!("{name} requires a value"))).clone()
        };
        match flag.as_str() {
            "--sites" => spec.sites = parse(&value("--sites"), "--sites"),
            "--updates" => spec.updates = parse(&value("--updates"), "--updates"),
            "--connections" => {
                spec.connections = parse(&value("--connections"), "--connections");
            }
            "--window" => spec.window = parse(&value("--window"), "--window"),
            "--seed" => spec.seed = parse(&value("--seed"), "--seed"),
            "--read-permille" => {
                spec.read_permille = parse(&value("--read-permille"), "--read-permille");
            }
            "--label" => spec.label = value("--label"),
            "--out-dir" => spec.out_dir = PathBuf::from(value("--out-dir")),
            "--flight-dir" => spec.flight_dir = Some(PathBuf::from(value("--flight-dir"))),
            "--help" | "-h" => {
                println!(
                    "avdb-loadgen: gateway load generator\n\
                     --sites N          cluster size (default 7)\n\
                     --updates N        total updates (default 100000)\n\
                     --connections N    concurrent connections (default 256)\n\
                     --window N         per-connection pipeline depth (default 32)\n\
                     --seed N           workload seed (default 1)\n\
                     --read-permille N  reads mixed in per mille (default 10)\n\
                     --label S          BENCH label (default loadgen)\n\
                     --out-dir DIR      report directory (default results)\n\
                     --flight-dir DIR   write flight-recorder dump here"
                );
                return;
            }
            other => die(&format!("unknown flag {other} (try --help)")),
        }
    }

    match run(&spec) {
        Ok(report) => {
            println!(
                "loadgen ok: {}/{} committed, {} aborted, {} failed; \
                 p50 {}us p95 {}us p99 {}us; {} upd/s; oracle clean",
                report.committed,
                report.updates,
                report.aborted,
                report.failures,
                report.latency_us.p50,
                report.latency_us.p95,
                report.latency_us.p99,
                report.updates_per_sec,
            );
            println!(
                "report: {}",
                spec.out_dir.join(format!("BENCH_{}.json", spec.label)).display()
            );
        }
        Err(e) => die(&e),
    }
}

fn parse<T: std::str::FromStr>(s: &str, name: &str) -> T
where
    T::Err: std::fmt::Display,
{
    s.parse().unwrap_or_else(|e| die(&format!("{name}: {e}")))
}

fn die(msg: &str) -> ! {
    eprintln!("avdb-loadgen: {msg}");
    std::process::exit(1);
}
