//! `avdb-check` — seed-sweep conformance fuzzer for the AV escrow protocol.
//!
//! Sweeps seeds × site counts × fault schedules through a full
//! [`DistributedSystem`] run, settles propagation, and verifies every
//! invariant the conformance oracle knows about. On a violation the
//! workload is binary-search minimized to the shortest request prefix
//! that still fails, and the minimal repro `(seed, fault, sites,
//! requests)` is printed.
//!
//! ```text
//! cargo run --bin avdb-check -- --seeds 0..500 --faults all
//! cargo run --bin avdb-check -- --seeds 0..100 --faults crash,loss --sites 3,5 --requests 60
//! ```
//!
//! Fault schedules:
//!
//! * `clean`     — reliable network, mixed Delay + Immediate traffic
//! * `crash`     — fail-stop crashes + recoveries at random times
//! * `partition` — a random two-group partition installed and healed mid-run
//! * `loss`      — every message dropped with 5% probability
//!
//! The fault schedules drive Delay (regular-product) traffic only: the
//! Immediate path is classic presumed-abort 2PC, which assumes reliable
//! delivery of the decision round (see DESIGN.md, "Oracle & invariants").

use avdb::chaos::{self, ChaosCase, Scenario};
use avdb::core::DistributedSystem;
use avdb::oracle::{self, Observation, Report, SubmittedRequest};
use avdb::simnet::{DetRng, LinkFilter, RegistrySnapshot};
use avdb::types::{ProductId, SiteId, SystemConfig, UpdateRequest, VirtualTime, Volume};
use std::ops::Range;
use std::process::ExitCode;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Fault {
    Clean,
    Crash,
    Partition,
    Loss,
}

impl Fault {
    const ALL: [Fault; 4] = [Fault::Clean, Fault::Crash, Fault::Partition, Fault::Loss];

    fn name(self) -> &'static str {
        match self {
            Fault::Clean => "clean",
            Fault::Crash => "crash",
            Fault::Partition => "partition",
            Fault::Loss => "loss",
        }
    }

    fn parse(s: &str) -> Option<Fault> {
        Fault::ALL.into_iter().find(|f| f.name() == s)
    }
}

struct Sweep {
    seeds: Range<u64>,
    faults: Vec<Fault>,
    sites: Vec<usize>,
    fanouts: Vec<usize>,
    coalesces: Vec<bool>,
    /// Non-empty switches the run to the chaos-scenario sweep mode.
    scenarios: Vec<Scenario>,
    requests: usize,
    /// Scenario mode only: submit just the first N requests of the full
    /// schedule (fault timing stays keyed to the full span, so a printed
    /// minimal repro replays bit-identically).
    prefix: Option<usize>,
    verbose: bool,
    stats: bool,
}

#[derive(Clone, Copy)]
struct Case {
    seed: u64,
    fault: Fault,
    n_sites: usize,
    /// Shortage fan-out width (0 = the paper's serial request loop).
    fanout: usize,
    /// Run with coalesced propagation frames (batch 4 so folding occurs).
    coalesce: bool,
}

const TICKS_PER_REQUEST: u64 = 4;

fn usage() -> ! {
    eprintln!(
        "usage: avdb-check [--seeds A..B] [--faults all|clean,crash,partition,loss] \
         [--sites N,M] [--fanout 0,2] [--coalesce 0,1] \
         [--scenario all|flash-sale,kill-the-granter,...] [--requests N] \
         [--prefix N] [--verbose] [--stats]"
    );
    std::process::exit(2);
}

fn parse_args() -> Sweep {
    let mut sweep = Sweep {
        seeds: 0..100,
        faults: Fault::ALL.to_vec(),
        sites: vec![3, 5],
        fanouts: vec![0],
        coalesces: vec![false],
        scenarios: Vec::new(),
        requests: 40,
        prefix: None,
        verbose: false,
        stats: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |n: &str| args.next().unwrap_or_else(|| panic!("{n} needs a value"));
        match flag.as_str() {
            "--seeds" => {
                let v = value("--seeds");
                let Some((a, b)) = v.split_once("..") else { usage() };
                let (Ok(a), Ok(b)) = (a.parse(), b.parse()) else { usage() };
                sweep.seeds = a..b;
            }
            "--faults" => {
                let v = value("--faults");
                sweep.faults = if v == "all" {
                    Fault::ALL.to_vec()
                } else {
                    v.split(',').map(|s| Fault::parse(s).unwrap_or_else(|| usage())).collect()
                };
            }
            "--sites" => {
                let v = value("--sites");
                sweep.sites =
                    v.split(',').map(|s| s.parse().unwrap_or_else(|_| usage())).collect();
            }
            "--fanout" => {
                let v = value("--fanout");
                sweep.fanouts =
                    v.split(',').map(|s| s.parse().unwrap_or_else(|_| usage())).collect();
            }
            "--coalesce" => {
                let v = value("--coalesce");
                sweep.coalesces = v
                    .split(',')
                    .map(|s| match s {
                        "0" | "false" => false,
                        "1" | "true" => true,
                        _ => usage(),
                    })
                    .collect();
            }
            "--scenario" | "--scenarios" => {
                let v = value("--scenario");
                sweep.scenarios = if v == "all" {
                    Scenario::ALL.to_vec()
                } else {
                    v.split(',')
                        .map(|s| Scenario::parse(s).unwrap_or_else(|| usage()))
                        .collect()
                };
            }
            "--requests" => {
                sweep.requests = value("--requests").parse().unwrap_or_else(|_| usage());
            }
            "--prefix" => {
                sweep.prefix = Some(value("--prefix").parse().unwrap_or_else(|_| usage()));
            }
            "--verbose" => sweep.verbose = true,
            "--stats" => sweep.stats = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if sweep.seeds.is_empty()
        || sweep.faults.is_empty()
        || sweep.sites.is_empty()
        || sweep.fanouts.is_empty()
        || sweep.coalesces.is_empty()
    {
        usage();
    }
    if sweep.sites.contains(&0) {
        usage();
    }
    sweep
}

fn config(case: Case) -> SystemConfig {
    let mut builder = SystemConfig::builder()
        .sites(case.n_sites)
        // Enough system-wide AV that most Delay traffic commits, little
        // enough that shortages force request/grant negotiation.
        .regular_products(2, Volume(40 * case.n_sites as i64))
        .non_regular_products(1, Volume(50))
        .shortage_fanout(case.fanout)
        .seed(case.seed);
    if case.coalesce {
        // Batch > 1 so the coalescer actually folds deltas into frames.
        builder = builder.coalesce_propagation(true).propagation_batch(4);
    }
    if case.fault == Fault::Loss {
        builder = builder.drop_probability(0.05);
    }
    builder.build().expect("sweep config is valid")
}

/// The full request schedule for a case. Minimization replays a prefix,
/// so the stream for a given case never depends on the request count.
fn workload(case: Case, requests: usize) -> Vec<(VirtualTime, UpdateRequest)> {
    let mut rng = DetRng::new(case.seed).derive(case.fault as u64 + 1);
    // Fault schedules stay on the AV-managed (Delay) products; Immediate
    // 2PC presumes reliable decision delivery, which faults break by design.
    let products = if case.fault == Fault::Clean { 3 } else { 2 };
    (0..requests)
        .map(|i| {
            let site = SiteId(rng.gen_range(case.n_sites as u64) as u32);
            let product = ProductId(rng.gen_range(products) as u32);
            let delta = if rng.gen_f64() < 0.65 {
                -rng.gen_i64_inclusive(1, 12)
            } else {
                rng.gen_i64_inclusive(1, 15)
            };
            (
                VirtualTime(i as u64 * TICKS_PER_REQUEST),
                UpdateRequest::new(site, product, Volume(delta)),
            )
        })
        .collect()
}

/// Prints the merged per-site registry summary for one run: message
/// counts by kind and the AV shortage-depth histogram.
fn print_stats(reg: &RegistrySnapshot) {
    println!("  registry: messages sent by kind:");
    let mut any = false;
    for (key, n) in &reg.counters {
        if let Some(kind) = key.strip_prefix("msg.sent.") {
            println!("    {kind:<16} {n}");
            any = true;
        }
    }
    if !any {
        println!("    (none)");
    }
    match reg.histograms.get("delay.shortage") {
        Some(h) => {
            println!(
                "  registry: AV shortage depth ({} shortages, mean {:.1}, max {}):",
                h.count,
                h.mean(),
                h.max
            );
            print!("{}", h.render());
        }
        None => println!("  registry: no AV shortages"),
    }
}

/// Runs one case over the first `requests` entries of its workload and
/// returns the oracle's verdict, the merged per-site registry, and the
/// captured observation (whose flight-recorder rings a violation dumps).
fn run_case(case: Case, requests: usize, full: usize) -> (Report, RegistrySnapshot, Observation) {
    let cfg = config(case);
    let schedule: Vec<_> = workload(case, full).into_iter().take(requests).collect();
    let horizon = full as u64 * TICKS_PER_REQUEST + 10;
    let mut sys = DistributedSystem::new(cfg);
    for (at, req) in &schedule {
        sys.submit_at(*at, *req);
    }
    let mut rng = DetRng::new(case.seed).derive(0xFA017 + case.fault as u64);
    match case.fault {
        Fault::Clean | Fault::Loss => sys.run_until_quiescent(),
        Fault::Crash => {
            // One or two distinct sites fail-stop and later recover.
            let crashes = (1 + rng.gen_range(2) as usize).min(case.n_sites);
            let mut sites: Vec<u64> = (0..case.n_sites as u64).collect();
            for _ in 0..crashes {
                let site = SiteId(sites.remove(rng.gen_range(sites.len() as u64) as usize) as u32);
                let down = rng.gen_range(horizon);
                let outage = 20 + rng.gen_range(horizon / 2);
                sys.crash_at(VirtualTime(down), site);
                sys.recover_at(VirtualTime(down + outage), site);
            }
            sys.run_until_quiescent();
        }
        Fault::Partition => {
            // Split the sites into two random non-empty groups mid-run,
            // then heal and let anti-entropy repair the damage.
            if case.n_sites < 2 {
                // A single site cannot partition; run the case clean.
                sys.run_until_quiescent();
            } else {
                let installed = rng.gen_range(horizon * 2 / 3);
                let healed = installed + 30 + rng.gen_range(horizon);
                let cut = 1 + rng.gen_range(case.n_sites as u64 - 1) as u32;
                let (a, b): (Vec<SiteId>, Vec<SiteId>) =
                    SiteId::all(case.n_sites).partition(|s| s.0 < cut);
                sys.run_until(VirtualTime(installed));
                sys.set_partition(LinkFilter::partition(vec![a, b]));
                sys.run_until(VirtualTime(healed));
                sys.heal_partition();
                sys.run_until_quiescent();
            }
        }
    }
    // Settle: repeated retransmission rounds until replicas agree (one
    // round suffices on reliable links; loss can eat flush traffic too).
    for _ in 0..50 {
        sys.flush_all();
        sys.run_until_quiescent();
        if sys.check_convergence().is_ok() {
            break;
        }
    }
    let outcomes = sys.drain_outcomes();
    let submitted =
        schedule.iter().map(|(at, req)| SubmittedRequest::single(*at, req)).collect();
    let observation = Observation::from_system(&sys, submitted, outcomes);
    let report = oracle::check(&observation);
    (report, sys.merged_registry(), observation)
}

/// Binary-searches the shortest failing request prefix of a known-bad
/// case (assumes failures are prefix-monotone, the usual fuzzing bet).
fn minimize(case: Case, full: usize) -> (usize, Report, RegistrySnapshot, Observation) {
    if !run_case(case, 0, full).0.is_ok() {
        let (report, reg, obs) = run_case(case, 0, full);
        return (0, report, reg, obs);
    }
    let (mut lo, mut hi) = (0, full);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        if run_case(case, mid, full).0.is_ok() {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let (report, reg, obs) = run_case(case, hi, full);
    (hi, report, reg, obs)
}

/// Writes the minimal repro's cluster-wide flight dump under
/// `results/flight/` so the protocol history leading to the violation
/// survives alongside the printed repro line. Returns the path written.
fn write_flight_dump(case: Case, min_requests: usize, obs: &Observation) -> Option<String> {
    let reason = format!(
        "oracle-violation: fault={} seed={} sites={} fanout={} coalesce={} \
         requests={min_requests}",
        case.fault.name(),
        case.seed,
        case.n_sites,
        case.fanout,
        case.coalesce as u8
    );
    let dump = obs.flight_dump(&reason);
    let dir = std::path::Path::new("results/flight");
    let path = dir.join(format!(
        "check-{}-seed{}-sites{}-fk{}-c{}.json",
        case.fault.name(),
        case.seed,
        case.n_sites,
        case.fanout,
        case.coalesce as u8
    ));
    if std::fs::create_dir_all(dir).is_err() || std::fs::write(&path, dump.to_json()).is_err() {
        eprintln!("avdb-check: could not write flight dump to {}", path.display());
        return None;
    }
    Some(path.display().to_string())
}

/// Writes a chaos run's cluster-wide flight dump under `results/flight/`.
fn write_chaos_flight_dump(
    case: &ChaosCase,
    min_requests: usize,
    obs: &Observation,
) -> Option<String> {
    let reason = format!(
        "oracle-violation: scenario={} seed={} sites={} requests={min_requests}",
        case.scenario, case.seed, case.n_sites
    );
    let dump = obs.flight_dump(&reason);
    let dir = std::path::Path::new("results/flight");
    let path = dir.join(format!(
        "chaos-{}-seed{}-sites{}.json",
        case.scenario, case.seed, case.n_sites
    ));
    if std::fs::create_dir_all(dir).is_err() || std::fs::write(&path, dump.to_json()).is_err() {
        eprintln!("avdb-check: could not write flight dump to {}", path.display());
        return None;
    }
    Some(path.display().to_string())
}

/// The chaos-scenario sweep: every requested scenario × site count × seed
/// runs oracle-checked through the chaos runner; a violation is
/// binary-search minimized and its flight recorder dumped, exactly like
/// the fault sweep. Targeted scenarios must additionally fire their
/// nemesis at least once per (scenario, sites) group — a sweep where
/// kill-the-granter never kills anything proves nothing.
fn run_scenario_sweep(sweep: &Sweep) -> ExitCode {
    let started = std::time::Instant::now();
    println!(
        "avdb-check: scenarios [{}], seeds {}..{}, sites {:?}, {} requests/run",
        sweep.scenarios.iter().map(|s| s.name()).collect::<Vec<_>>().join(", "),
        sweep.seeds.start,
        sweep.seeds.end,
        sweep.sites,
        sweep.requests,
    );
    let mut runs = 0u64;
    let mut failures = 0u64;
    for &scenario in &sweep.scenarios {
        let mut scenario_runs = 0u64;
        let mut scenario_failures = 0u64;
        for &n_sites in &sweep.sites {
            let mut fired_total = 0u64;
            for seed in sweep.seeds.clone() {
                let case = ChaosCase { scenario, n_sites, updates: sweep.requests, seed };
                let verdict =
                    chaos::run_case(&case, sweep.prefix.unwrap_or(sweep.requests));
                scenario_runs += 1;
                fired_total += verdict.fired;
                if sweep.verbose {
                    println!(
                        "  {scenario} seed={seed} sites={n_sites}: {} (nemesis fired {}×)",
                        if verdict.report.is_ok() { "ok" } else { "VIOLATION" },
                        verdict.fired
                    );
                }
                if !verdict.report.is_ok() {
                    scenario_failures += 1;
                    println!(
                        "VIOLATION scenario={scenario} seed={seed} sites={n_sites} \
                         requests={}",
                        sweep.requests
                    );
                    print!("{}", verdict.report);
                    let (min_requests, min_verdict) = chaos::minimize(&case);
                    // `--requests` stays at the full count: minimization
                    // replays a prefix of the full schedule (fault timing
                    // is keyed to the full span), so only `--prefix`
                    // shrinks.
                    println!(
                        "  minimal repro: --scenario {scenario} --seeds {seed}..{} \
                         --sites {n_sites} --requests {} --prefix {min_requests}",
                        seed + 1,
                        sweep.requests
                    );
                    if let Some(path) =
                        write_chaos_flight_dump(&case, min_requests, &min_verdict.observation)
                    {
                        println!(
                            "  flight recorder dump: {path} (render with `avdb-trace flight`)"
                        );
                    }
                    print!("{}", min_verdict.report);
                }
            }
            if scenario.is_targeted() && fired_total == 0 {
                scenario_failures += 1;
                println!(
                    "VACUOUS scenario={scenario} sites={n_sites}: nemesis never fired \
                     across {} seed(s)",
                    sweep.seeds.end.saturating_sub(sweep.seeds.start)
                );
            }
        }
        runs += scenario_runs;
        failures += scenario_failures;
        println!(
            "  {:<22} {} runs, {} violation{}",
            scenario.name(),
            scenario_runs,
            scenario_failures,
            if scenario_failures == 1 { "" } else { "s" }
        );
    }
    let elapsed = started.elapsed();
    if failures == 0 {
        println!("all {runs} scenario runs conform ({elapsed:.1?})");
        ExitCode::SUCCESS
    } else {
        println!("{failures} of {runs} scenario runs violated invariants ({elapsed:.1?})");
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let sweep = parse_args();
    if !sweep.scenarios.is_empty() {
        return run_scenario_sweep(&sweep);
    }
    let started = std::time::Instant::now();
    println!(
        "avdb-check: seeds {}..{}, faults [{}], sites {:?}, fanout {:?}, coalesce {:?}, \
         {} requests/run",
        sweep.seeds.start,
        sweep.seeds.end,
        sweep.faults.iter().map(|f| f.name()).collect::<Vec<_>>().join(", "),
        sweep.sites,
        sweep.fanouts,
        sweep.coalesces,
        sweep.requests,
    );
    let mut runs = 0u64;
    let mut failures = 0u64;
    // `--stats` on a single replayed case (one seed, fault, site count —
    // the shape of a printed minimal repro) summarizes that run directly;
    // on a sweep it fires only for the minimized failures.
    let single_case = sweep.seeds.end.saturating_sub(sweep.seeds.start) == 1
        && sweep.faults.len() == 1
        && sweep.sites.len() == 1
        && sweep.fanouts.len() == 1
        && sweep.coalesces.len() == 1;
    for &fault in &sweep.faults {
        let mut fault_runs = 0u64;
        let mut fault_failures = 0u64;
        for &n_sites in &sweep.sites {
            for &fanout in &sweep.fanouts {
                for &coalesce in &sweep.coalesces {
                    for seed in sweep.seeds.clone() {
                        let case = Case { seed, fault, n_sites, fanout, coalesce };
                        let (report, registry, _) =
                            run_case(case, sweep.requests, sweep.requests);
                        fault_runs += 1;
                        if sweep.verbose {
                            println!(
                                "  {} seed={seed} sites={n_sites} fanout={fanout} \
                                 coalesce={}: {}",
                                fault.name(),
                                coalesce as u8,
                                if report.is_ok() { "ok" } else { "VIOLATION" }
                            );
                        }
                        if sweep.stats && single_case {
                            print_stats(&registry);
                        }
                        if !report.is_ok() {
                            fault_failures += 1;
                            println!(
                                "VIOLATION fault={} seed={seed} sites={n_sites} \
                                 fanout={fanout} coalesce={} requests={}",
                                fault.name(),
                                coalesce as u8,
                                sweep.requests
                            );
                            print!("{report}");
                            let (min_requests, min_report, min_registry, min_obs) =
                                minimize(case, sweep.requests);
                            println!(
                                "  minimal repro: --seeds {seed}..{} --faults {} \
                                 --sites {n_sites} --fanout {fanout} --coalesce {} \
                                 --requests {min_requests}",
                                seed + 1,
                                fault.name(),
                                coalesce as u8
                            );
                            if let Some(path) = write_flight_dump(case, min_requests, &min_obs)
                            {
                                println!(
                                    "  flight recorder dump: {path} \
                                     (render with `avdb-trace flight`)"
                                );
                            }
                            print!("{min_report}");
                            if sweep.stats {
                                print_stats(&min_registry);
                            }
                        }
                    }
                }
            }
        }
        runs += fault_runs;
        failures += fault_failures;
        println!(
            "  {:<9} {} runs, {} violation{}",
            fault.name(),
            fault_runs,
            fault_failures,
            if fault_failures == 1 { "" } else { "s" }
        );
    }
    let elapsed = started.elapsed();
    if failures == 0 {
        println!("all {runs} runs conform ({elapsed:.1?})");
        ExitCode::SUCCESS
    } else {
        println!("{failures} of {runs} runs violated invariants ({elapsed:.1?})");
        ExitCode::FAILURE
    }
}
