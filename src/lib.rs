#![warn(missing_docs)]

//! # avdb — autonomous consistency for distributed databases
//!
//! Facade crate re-exporting the whole workspace: a production-quality
//! reproduction of Hanamura, Kaji & Mori, *"Autonomous Consistency
//! Technique in Distributed Database with Heterogeneous Requirements"*
//! (IPPS 2000).
//!
//! Start with [`sim::scenarios::paper_scenario`] to build the paper's
//! 3-site supply-chain setup, or assemble your own with
//! [`types::SystemConfig`] + [`core::DistributedSystem`]:
//!
//! ```
//! use avdb::prelude::*;
//!
//! // One maker + two retailers; one stocked product under AV management.
//! let config = SystemConfig::builder()
//!     .sites(3)
//!     .regular_products(1, Volume(90))
//!     .build()?;
//! let mut system = DistributedSystem::new(config);
//!
//! // A retailer sells 20 units: covered by its local AV share (30),
//! // so the commit is instantaneous and costs zero messages.
//! system.submit_at(VirtualTime(0),
//!     UpdateRequest::new(SiteId(1), ProductId(0), Volume(-20)));
//! system.run_until_quiescent();
//!
//! let outcomes = system.drain_outcomes();
//! assert!(outcomes[0].2.is_committed());
//! assert_eq!(outcomes[0].2.correspondences(), 0);
//! assert_eq!(system.stock(SiteId(1), ProductId(0)), Volume(70));
//! # Ok::<(), AvdbError>(())
//! ```

/// Shared vocabulary: ids, volumes, requests, errors, configuration.
pub use avdb_types as types;
/// Deterministic discrete-event network simulator and live transport.
pub use avdb_simnet as simnet;
/// Per-site local database engine (tables, WAL, transactions, recovery).
pub use avdb_storage as storage;
/// Allowable Volume (escrow) tables and transfer strategies.
pub use avdb_escrow as escrow;
/// The paper's contribution: accelerator, Delay Update, Immediate Update.
pub use avdb_core as core;
/// Conventional centralized comparator systems.
pub use avdb_baseline as baseline;
/// SCM workload generation.
pub use avdb_workload as workload;
/// Correspondence accounting and reporting.
pub use avdb_metrics as metrics;
/// Causal tracing, metrics registries, and run exports.
pub use avdb_telemetry as telemetry;
/// Conformance oracle: sequential reference model + invariant checker.
pub use avdb_oracle as oracle;
/// Experiment harness reproducing the paper's evaluation.
pub use avdb_sim as sim;
/// Workload-matrix benchmark harness behind `avdb-bench`.
pub use avdb_bench as bench;
/// Adversarial nemesis engine and named scenario library.
pub use avdb_chaos as chaos;
/// Binary wire protocol: framing, request/response codec, typed errors.
pub use avdb_wire as wire;
/// Client-facing gateway: per-site wire listeners over a live TCP mesh.
pub use avdb_gateway as gateway;
/// Pipelined wire-protocol client and connection pool.
pub use avdb_client as client;

/// Client-side load generator behind `avdb-loadgen`.
pub mod loadgen;

/// Commonly used items, for `use avdb::prelude::*`.
pub mod prelude {
    pub use avdb_core::{Accelerator, DistributedSystem};
    pub use avdb_types::{
        AvdbError, ProductClass, ProductId, Result, SiteId, SystemConfig, UpdateKind,
        UpdateOutcome, UpdateRequest, VirtualTime, Volume,
    };
}
